//! Mapping desired complex weights onto discrete atom states.
//!
//! After training, the network's weights `H_des` are continuous complex
//! numbers; the hardware offers only `Σ_m e^{j(φ_m^p + φ_m)}` with
//! `φ_m` from a 2-bit alphabet. The paper solves
//!
//! ```text
//! Φ = argmin_φ |H_mts(Φ) − H_des|            (Eqn 7)
//! Φ = argmin_φ |H_mts(Φ) − (H_des − H_e)|    (Eqn 8, multipath-aware)
//! ```
//!
//! We use per-atom coordinate descent: hold all atoms but one fixed, try
//! each of its states, keep the best, and sweep until convergence. The
//! objective is convex in no useful sense, but with hundreds of atoms each
//! contributing a bounded unit phasor, descent starting from the
//! phase-aligned initialization converges to within quantization noise in
//! a handful of sweeps.
//!
//! The same machinery extends to the **joint multi-target** problem of the
//! parallelism schemes (Eqns 9–10): one shared configuration must
//! approximate `K` different weights, one per receive antenna (or
//! per-subcarrier Fourier bin). The per-atom step then minimizes the sum
//! of squared errors across all targets.

use crate::atom::PhaseCode;
use metaai_math::C64;
use metaai_telemetry::{Counter, Histogram};
use std::sync::OnceLock;

/// Bucket bounds for the Eqn-4 residual histogram `|H_mts − H_des|`
/// (normalized units). A healthy 256-atom solve lands well below 1.5, so
/// mass drifting into the upper buckets is a direct signal the discrete
/// realization is degrading.
const RESIDUAL_BOUNDS: [f64; 8] = [0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];

/// Solver-stage instruments, registered once with the global registry.
struct SolverMetrics {
    solves: Counter,
    sweeps: Counter,
    table_builds: Counter,
    residual: Histogram,
}

fn metrics() -> &'static SolverMetrics {
    static METRICS: OnceLock<SolverMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        SolverMetrics {
            solves: r.counter("metaai.mts.solver.solves"),
            sweeps: r.counter("metaai.mts.solver.sweeps"),
            table_builds: r.counter("metaai.mts.solver.table_builds"),
            residual: r.histogram("metaai.mts.solver.residual", &RESIDUAL_BOUNDS),
        }
    })
}

/// Registers the solver's instruments with the global telemetry registry,
/// so snapshots list them (zero-valued) even before the first solve.
pub fn register_metrics() {
    let _ = metrics();
}

/// Precomputed per-atom state contributions for one [`WeightSolver`]:
/// `contrib[t][atom · S + s] = phasors[t][atom] · e^{jφ_s}` with
/// `S = 2^bits` states.
///
/// The coordinate-descent inner loop evaluates `phasors[t][atom] ·
/// state_phasor` for every atom × state × sweep; tabulating the products
/// once makes that loop add/compare only. Because `PhaseCode::phase()` is
/// a pure function of `(index, bits)` and each product is formed from the
/// exact same operands, table lookups are bit-identical to the on-the-fly
/// multiplies they replace.
///
/// The table depends only on the solver (not on targets), so callers
/// solving many targets against one geometry — [`WeightSolver`] users like
/// the weight mapper — build it once and share it read-only across
/// workers.
#[derive(Clone, Debug)]
pub struct StateTable {
    contrib: Vec<Vec<C64>>,
    n_states: usize,
}

/// Reusable per-worker workspace for [`WeightSolver::solve_with`]: the
/// codes and running-sums buffers that would otherwise be reallocated per
/// call.
#[derive(Clone, Debug, Default)]
pub struct SolverScratch {
    codes: Vec<PhaseCode>,
    sums: Vec<C64>,
}

impl SolverScratch {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        SolverScratch::default()
    }
}

/// Result of solving for one configuration.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The atom states found.
    pub codes: Vec<PhaseCode>,
    /// The achieved normalized sum(s), one per target.
    pub achieved: Vec<C64>,
    /// Final residual `√(Σ_k |achieved_k − target_k|²)`.
    pub residual: f64,
    /// Coordinate-descent sweeps used.
    pub sweeps: usize,
}

/// Coordinate-descent solver over a fixed set of per-atom path phasors.
#[derive(Clone, Debug)]
pub struct WeightSolver {
    /// Per-atom, per-target path phasors: `phasors[k][m] = e^{jφ_{m,k}^p}`.
    pub phasors: Vec<Vec<C64>>,
    /// Bit depth of the atoms (2 for the prototypes).
    pub bits: u8,
    /// Maximum descent sweeps.
    pub max_sweeps: usize,
}

impl WeightSolver {
    /// Single-target solver from one set of path phasors.
    pub fn single(path_phasors: Vec<C64>, bits: u8) -> Self {
        WeightSolver {
            phasors: vec![path_phasors],
            bits,
            max_sweeps: 6,
        }
    }

    /// Joint solver over `K` targets (antenna or subcarrier parallelism).
    pub fn joint(per_target_phasors: Vec<Vec<C64>>, bits: u8) -> Self {
        assert!(!per_target_phasors.is_empty(), "need at least one target");
        let m = per_target_phasors[0].len();
        assert!(
            per_target_phasors.iter().all(|p| p.len() == m),
            "all targets must cover the same atoms"
        );
        WeightSolver {
            phasors: per_target_phasors,
            bits,
            max_sweeps: 6,
        }
    }

    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.phasors[0].len()
    }

    /// Number of simultaneous targets.
    pub fn num_targets(&self) -> usize {
        self.phasors.len()
    }

    /// The largest magnitude reachable *in every direction* of the complex
    /// plane for target `k` — the safe radius for weight scaling.
    ///
    /// For direction ψ the best reachable projection is
    /// `Σ_m max_s cos(θ_{m} + φ_s − ψ)`; the safe radius is the minimum
    /// over ψ (evaluated on a grid — the function is smooth).
    pub fn reachable_radius(&self, k: usize) -> f64 {
        let states: Vec<f64> = (0..(1usize << self.bits))
            .map(|i| PhaseCode::new(i as u8, self.bits).phase())
            .collect();
        // `arg()` is independent of ψ — hoist it out of the grid loop
        // (the grid re-evaluated atan2 64× per atom before).
        let args: Vec<f64> = self.phasors[k].iter().map(|u| u.arg()).collect();
        let mut min_r = f64::INFINITY;
        let grid = 64;
        for g in 0..grid {
            let psi = std::f64::consts::TAU * g as f64 / grid as f64;
            let r: f64 = args
                .iter()
                .map(|&a| {
                    states
                        .iter()
                        .map(|&s| (a + s - psi).cos())
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .sum();
            min_r = min_r.min(r);
        }
        min_r
    }

    /// Builds the per-atom state-contribution table for this solver. Build
    /// it once and pass it to [`solve_with`](Self::solve_with) when solving
    /// many targets against the same geometry.
    pub fn state_table(&self) -> StateTable {
        let n_states = 1usize << self.bits;
        let state_phasors: Vec<C64> = (0..n_states)
            .map(|i| C64::cis(PhaseCode::new(i as u8, self.bits).phase()))
            .collect();
        let contrib = self
            .phasors
            .iter()
            .map(|row| {
                let mut c = Vec::with_capacity(row.len() * n_states);
                for &u in row {
                    for &sp in &state_phasors {
                        c.push(u * sp);
                    }
                }
                c
            })
            .collect();
        if metaai_telemetry::enabled() {
            metrics().table_builds.inc();
        }
        StateTable { contrib, n_states }
    }

    /// Solves for one shared configuration approximating `targets[k]` on
    /// target `k`'s phasor set (all in normalized units, i.e. `H_des / α`).
    ///
    /// Builds the state table once per call; batch callers should build it
    /// themselves and use [`solve_with`](Self::solve_with).
    pub fn solve(&self, targets: &[C64]) -> SolveResult {
        self.solve_with(targets, &self.state_table(), &mut SolverScratch::new())
    }

    /// [`solve`](Self::solve) with a caller-provided state table and
    /// reusable workspace. `table` must come from this solver's
    /// [`state_table`](Self::state_table).
    ///
    /// Results are bitwise identical to the pre-table kernel: every product
    /// the original inner loop computed on the fly is looked up instead
    /// (same operands, same operation), and the summation order
    /// `(sums[t] + contrib) − targets[t]` is preserved exactly — do not
    /// "simplify" it to `(sums − targets) + contrib`, floating-point
    /// addition is not associative.
    pub fn solve_with(
        &self,
        targets: &[C64],
        table: &StateTable,
        scratch: &mut SolverScratch,
    ) -> SolveResult {
        self.check_inputs(targets, table);
        // Phase-aligned initialization against the first target: point each
        // atom's contribution at the target direction.
        scratch.codes.clear();
        scratch.codes.extend(
            self.phasors[0]
                .iter()
                .map(|u| PhaseCode::quantize(targets[0].arg() - u.arg(), self.bits)),
        );
        self.descend(targets, table, scratch)
    }

    /// [`solve_with`](Self::solve_with), but warm-started from `initial`
    /// instead of the phase-aligned initialization — the online-adaptation
    /// path: when the channel drifts a little, the previous round's codes
    /// are already near the new optimum and descent converges in a sweep
    /// or two instead of re-deriving the configuration from scratch.
    ///
    /// The descent body is the exact same kernel `solve_with` runs, so a
    /// warm solve seeded with the codes the phase-aligned init would have
    /// produced is bitwise identical to the cold solve.
    pub fn solve_warm(
        &self,
        targets: &[C64],
        initial: &[PhaseCode],
        table: &StateTable,
        scratch: &mut SolverScratch,
    ) -> SolveResult {
        self.check_inputs(targets, table);
        assert_eq!(
            initial.len(),
            self.num_atoms(),
            "warm start must cover every atom"
        );
        assert!(
            initial.iter().all(|c| c.bits == self.bits),
            "warm-start codes use a different bit depth"
        );
        scratch.codes.clear();
        scratch.codes.extend_from_slice(initial);
        self.descend(targets, table, scratch)
    }

    fn check_inputs(&self, targets: &[C64], table: &StateTable) {
        assert_eq!(
            targets.len(),
            self.num_targets(),
            "one target per phasor set"
        );
        assert_eq!(
            table.contrib.len(),
            self.num_targets(),
            "state table built for a different solver"
        );
    }

    /// The shared coordinate-descent body: `scratch.codes` must already
    /// hold one code per atom (the initialization); everything after that
    /// point is identical between cold and warm solves.
    fn descend(
        &self,
        targets: &[C64],
        table: &StateTable,
        scratch: &mut SolverScratch,
    ) -> SolveResult {
        let k = self.num_targets();
        let n_states = table.n_states;
        let codes = &mut scratch.codes;

        // Running sums per target (left fold from zero, matching `Sum`).
        scratch.sums.clear();
        scratch.sums.extend((0..k).map(|t| {
            codes
                .iter()
                .enumerate()
                .map(|(atom, c)| table.contrib[t][atom * n_states + c.index as usize])
                .fold(C64::ZERO, |a, b| a + b)
        }));
        let sums = &mut scratch.sums;

        let mut sweeps = 0;
        for sweep in 0..self.max_sweeps {
            sweeps = sweep + 1;
            let mut changed = false;
            for (atom, code) in codes.iter_mut().enumerate() {
                let base = atom * n_states;
                // Remove this atom's contribution from every sum.
                for (t, sum) in sums.iter_mut().enumerate() {
                    *sum -= table.contrib[t][base + code.index as usize];
                }
                // Try every state; keep the one minimizing total error.
                let mut best_state = code.index as usize;
                let mut best_err = f64::INFINITY;
                if k == 1 {
                    // Single-target fast path (the mapper's case). A
                    // one-element f64 sum is `0.0 + x = x`, so this matches
                    // the generic loop bit for bit.
                    let (sum0, target0) = (sums[0], targets[0]);
                    let row = &table.contrib[0][base..base + n_states];
                    for (s, &c) in row.iter().enumerate() {
                        let err = (sum0 + c - target0).norm_sq();
                        if err < best_err {
                            best_err = err;
                            best_state = s;
                        }
                    }
                } else {
                    for s in 0..n_states {
                        let err: f64 = (0..k)
                            .map(|t| {
                                let trial = sums[t] + table.contrib[t][base + s];
                                (trial - targets[t]).norm_sq()
                            })
                            .sum();
                        if err < best_err {
                            best_err = err;
                            best_state = s;
                        }
                    }
                }
                if best_state != code.index as usize {
                    changed = true;
                    *code = PhaseCode::new(best_state as u8, self.bits);
                }
                for (t, sum) in sums.iter_mut().enumerate() {
                    *sum += table.contrib[t][base + best_state];
                }
            }
            if !changed {
                break;
            }
        }

        let residual = sums
            .iter()
            .zip(targets)
            .map(|(&s, &t)| (s - t).norm_sq())
            .sum::<f64>()
            .sqrt();
        if metaai_telemetry::enabled() {
            let m = metrics();
            m.solves.inc();
            m.sweeps.add(sweeps as u64);
            m.residual.observe(residual);
        }
        SolveResult {
            codes: codes.clone(),
            achieved: sums.clone(),
            residual,
            sweeps,
        }
    }

    /// Convenience for the single-target case.
    pub fn solve_one(&self, target: C64) -> SolveResult {
        assert_eq!(self.num_targets(), 1, "solver has multiple targets");
        self.solve(&[target])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_math::rng::SimRng;

    fn random_phasors(m: usize, seed: u64) -> Vec<C64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..m).map(|_| rng.unit_phasor()).collect()
    }

    #[test]
    fn single_target_residual_is_small_for_m256() {
        let solver = WeightSolver::single(random_phasors(256, 1), 2);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..20 {
            let r = 0.6 * solver.reachable_radius(0) * rng.uniform();
            let target = C64::from_polar(r, rng.phase());
            let res = solver.solve_one(target);
            assert!(
                res.residual < 1.5,
                "residual {} for target {} (radius {})",
                res.residual,
                target,
                r
            );
        }
    }

    #[test]
    fn residual_shrinks_with_atom_count() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut residuals = Vec::new();
        for &m in &[16usize, 64, 256] {
            let solver = WeightSolver::single(random_phasors(m, 10 + m as u64), 2);
            let mut total = 0.0;
            for _ in 0..10 {
                // Same *relative* target position across sizes.
                let target = C64::from_polar(0.4 * m as f64, rng.phase());
                total += solver.solve_one(target).residual / m as f64;
            }
            residuals.push(total / 10.0);
        }
        assert!(
            residuals[0] > residuals[1] && residuals[1] > residuals[2],
            "relative residual must shrink with M: {residuals:?}"
        );
    }

    #[test]
    fn reachable_radius_scales_with_m() {
        for &m in &[16usize, 64, 256] {
            let solver = WeightSolver::single(random_phasors(m, m as u64), 2);
            let r = solver.reachable_radius(0);
            // With 4 states, each atom contributes at least cos(π/4) ≈ 0.707
            // toward any direction; typically ≈ 0.9.
            assert!(r > 0.7 * m as f64 && r <= m as f64, "m={m} radius={r}");
        }
    }

    #[test]
    fn zero_target_is_reachable() {
        let solver = WeightSolver::single(random_phasors(256, 5), 2);
        let res = solver.solve_one(C64::ZERO);
        assert!(res.residual < 1.0, "residual {}", res.residual);
    }

    #[test]
    fn joint_solver_trades_accuracy_across_targets() {
        // One configuration, K increasingly many independent targets: the
        // per-target residual must grow with K (the coupling the paper's
        // Fig 31 observes).
        let m = 256;
        let mut rng = SimRng::seed_from_u64(7);
        let mut per_target_residuals = Vec::new();
        for &k in &[1usize, 4, 8] {
            let phasors: Vec<Vec<C64>> =
                (0..k).map(|t| random_phasors(m, 100 + t as u64)).collect();
            let solver = WeightSolver::joint(phasors, 2);
            let targets: Vec<C64> = (0..k)
                .map(|_| C64::from_polar(0.3 * m as f64, rng.phase()))
                .collect();
            let res = solver.solve(&targets);
            per_target_residuals.push(res.residual / (k as f64).sqrt());
        }
        assert!(
            per_target_residuals[0] < per_target_residuals[1],
            "residuals {per_target_residuals:?}"
        );
        assert!(
            per_target_residuals[1] < per_target_residuals[2] * 1.5,
            "residuals {per_target_residuals:?}"
        );
    }

    #[test]
    fn one_bit_atoms_are_worse_than_two_bit() {
        let phasors = random_phasors(128, 9);
        let s1 = WeightSolver::single(phasors.clone(), 1);
        let s2 = WeightSolver::single(phasors, 2);
        let mut rng = SimRng::seed_from_u64(11);
        let mut e1 = 0.0;
        let mut e2 = 0.0;
        for _ in 0..10 {
            let t = C64::from_polar(30.0, rng.phase());
            e1 += s1.solve_one(t).residual;
            e2 += s2.solve_one(t).residual;
        }
        assert!(e2 < e1, "2-bit {e2} must beat 1-bit {e1}");
    }

    /// The pre-table coordinate-descent kernel, kept verbatim as the
    /// reference the optimised `solve` must match bit for bit.
    fn reference_solve(solver: &WeightSolver, targets: &[C64]) -> SolveResult {
        assert_eq!(targets.len(), solver.num_targets());
        let k = solver.num_targets();
        let n_states = 1usize << solver.bits;
        let state_phasors: Vec<C64> = (0..n_states)
            .map(|i| C64::cis(PhaseCode::new(i as u8, solver.bits).phase()))
            .collect();
        let mut codes: Vec<PhaseCode> = solver.phasors[0]
            .iter()
            .map(|u| PhaseCode::quantize(targets[0].arg() - u.arg(), solver.bits))
            .collect();
        let mut sums: Vec<C64> = (0..k)
            .map(|t| {
                solver.phasors[t]
                    .iter()
                    .zip(&codes)
                    .map(|(&u, c)| u * C64::cis(c.phase()))
                    .sum()
            })
            .collect();
        let mut sweeps = 0;
        for sweep in 0..solver.max_sweeps {
            sweeps = sweep + 1;
            let mut changed = false;
            for (atom, code) in codes.iter_mut().enumerate() {
                let current = C64::cis(code.phase());
                for (t, sum) in sums.iter_mut().enumerate() {
                    *sum -= solver.phasors[t][atom] * current;
                }
                let mut best_state = code.index as usize;
                let mut best_err = f64::INFINITY;
                for (s, &sp) in state_phasors.iter().enumerate() {
                    let err: f64 = (0..k)
                        .map(|t| {
                            let trial = sums[t] + solver.phasors[t][atom] * sp;
                            (trial - targets[t]).norm_sq()
                        })
                        .sum();
                    if err < best_err {
                        best_err = err;
                        best_state = s;
                    }
                }
                if best_state != code.index as usize {
                    changed = true;
                    *code = PhaseCode::new(best_state as u8, solver.bits);
                }
                let chosen = state_phasors[best_state];
                for (t, sum) in sums.iter_mut().enumerate() {
                    *sum += solver.phasors[t][atom] * chosen;
                }
            }
            if !changed {
                break;
            }
        }
        let residual = sums
            .iter()
            .zip(targets)
            .map(|(&s, &t)| (s - t).norm_sq())
            .sum::<f64>()
            .sqrt();
        SolveResult {
            codes,
            achieved: sums,
            residual,
            sweeps,
        }
    }

    #[test]
    fn table_solve_matches_reference_kernel_bitwise() {
        let mut rng = SimRng::seed_from_u64(23);
        for &(m, bits) in &[(64usize, 1u8), (128, 2), (96, 3)] {
            let solver = WeightSolver::single(random_phasors(m, 1000 + m as u64), bits);
            let table = solver.state_table();
            let mut scratch = SolverScratch::new();
            for _ in 0..10 {
                let target = C64::from_polar(0.7 * m as f64 * rng.uniform(), rng.phase());
                let fast = solver.solve_with(&[target], &table, &mut scratch);
                let refr = reference_solve(&solver, &[target]);
                assert_eq!(fast.codes, refr.codes);
                assert_eq!(fast.sweeps, refr.sweeps);
                assert_eq!(fast.residual.to_bits(), refr.residual.to_bits());
                for (a, b) in fast.achieved.iter().zip(&refr.achieved) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn joint_table_solve_matches_reference_kernel_bitwise() {
        let m = 64;
        let phasors: Vec<Vec<C64>> = (0..4).map(|t| random_phasors(m, 300 + t as u64)).collect();
        let solver = WeightSolver::joint(phasors, 2);
        let table = solver.state_table();
        let mut scratch = SolverScratch::new();
        let mut rng = SimRng::seed_from_u64(29);
        for _ in 0..5 {
            let targets: Vec<C64> = (0..4)
                .map(|_| C64::from_polar(0.3 * m as f64, rng.phase()))
                .collect();
            let fast = solver.solve_with(&targets, &table, &mut scratch);
            let refr = reference_solve(&solver, &targets);
            assert_eq!(fast.codes, refr.codes);
            assert_eq!(fast.residual.to_bits(), refr.residual.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_does_not_change_results() {
        let solver = WeightSolver::single(random_phasors(64, 31), 2);
        let table = solver.state_table();
        let mut scratch = SolverScratch::new();
        let t1 = C64::new(10.0, -5.0);
        let t2 = C64::new(-3.0, 12.0);
        let first = solver.solve_with(&[t1], &table, &mut scratch);
        let _ = solver.solve_with(&[t2], &table, &mut scratch);
        let again = solver.solve_with(&[t1], &table, &mut scratch);
        assert_eq!(first.codes, again.codes);
        assert_eq!(first.residual.to_bits(), again.residual.to_bits());
    }

    #[test]
    fn solve_is_deterministic() {
        let solver = WeightSolver::single(random_phasors(64, 13), 2);
        let t = C64::new(10.0, -5.0);
        let a = solver.solve_one(t);
        let b = solver.solve_one(t);
        assert_eq!(a.codes, b.codes);
        assert_eq!(a.residual, b.residual);
    }

    #[test]
    fn warm_solve_with_phase_aligned_codes_matches_cold_solve_bitwise() {
        // Seeding `solve_warm` with exactly the codes the phase-aligned
        // initialization would produce must reproduce `solve_with` bit for
        // bit — the two entry points share one descent kernel.
        let mut rng = SimRng::seed_from_u64(41);
        for &(m, bits) in &[(64usize, 2u8), (96, 3)] {
            let solver = WeightSolver::single(random_phasors(m, 2000 + m as u64), bits);
            let table = solver.state_table();
            let mut scratch = SolverScratch::new();
            for _ in 0..5 {
                let target = C64::from_polar(0.5 * m as f64 * rng.uniform(), rng.phase());
                let aligned: Vec<PhaseCode> = solver.phasors[0]
                    .iter()
                    .map(|u| PhaseCode::quantize(target.arg() - u.arg(), bits))
                    .collect();
                let cold = solver.solve_with(&[target], &table, &mut scratch);
                let warm = solver.solve_warm(&[target], &aligned, &table, &mut scratch);
                assert_eq!(cold.codes, warm.codes);
                assert_eq!(cold.sweeps, warm.sweeps);
                assert_eq!(cold.residual.to_bits(), warm.residual.to_bits());
            }
        }
    }

    #[test]
    fn warm_solve_from_a_converged_solution_terminates_in_one_sweep() {
        let solver = WeightSolver::single(random_phasors(256, 43), 2);
        let table = solver.state_table();
        let mut scratch = SolverScratch::new();
        let target = C64::new(60.0, -25.0);
        let cold = solver.solve_with(&[target], &table, &mut scratch);
        assert!(
            cold.sweeps < solver.max_sweeps,
            "pick a target where descent converges ({} sweeps)",
            cold.sweeps
        );
        let warm = solver.solve_warm(&[target], &cold.codes, &table, &mut scratch);
        assert_eq!(warm.sweeps, 1, "a converged start changes nothing");
        assert_eq!(warm.codes, cold.codes);
        // The warm path recomputes the sums with a fresh fold where the
        // cold path maintained them incrementally through descent, so the
        // residual matches only to rounding, not bit for bit.
        assert!((warm.residual - cold.residual).abs() < 1e-9);
    }

    #[test]
    fn warm_solve_tracks_a_nudged_target_cheaply() {
        // The adaptation use case: solve once, nudge the target slightly,
        // and the warm re-solve must stay accurate while sweeping no more
        // than the cold re-solve would.
        let solver = WeightSolver::single(random_phasors(256, 47), 2);
        let table = solver.state_table();
        let mut scratch = SolverScratch::new();
        let before = C64::new(55.0, 30.0);
        let after = before + C64::new(1.5, -2.0);
        let base = solver.solve_with(&[before], &table, &mut scratch);
        let cold = solver.solve_with(&[after], &table, &mut scratch);
        let warm = solver.solve_warm(&[after], &base.codes, &table, &mut scratch);
        assert!(
            warm.sweeps < solver.max_sweeps,
            "warm descent converged ({} sweeps)",
            warm.sweeps
        );
        assert!(
            warm.residual < cold.residual + 1.0,
            "warm residual {} must stay in the cold solve's ballpark {}",
            warm.residual,
            cold.residual
        );
    }

    #[test]
    fn achieved_matches_recomputed_sum() {
        let phasors = random_phasors(64, 17);
        let solver = WeightSolver::single(phasors.clone(), 2);
        let res = solver.solve_one(C64::new(8.0, 3.0));
        let recomputed: C64 = phasors
            .iter()
            .zip(&res.codes)
            .map(|(&u, c)| u * C64::cis(c.phase()))
            .sum();
        assert!((recomputed - res.achieved[0]).abs() < 1e-9);
    }
}
