//! The planar meta-atom array and the two fabricated prototypes.

use crate::atom::{MetaAtom, PhaseCode};
use metaai_math::rng::SimRng;
use metaai_rf::geometry::Point3;
use metaai_rf::pathloss::wavelength;

/// The two metasurface prototypes fabricated for the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Prototype {
    /// Dual-band prototype covering 2.4 GHz and 5 GHz Wi-Fi bands.
    DualBand,
    /// Single-band prototype for the 3.5 GHz 5G NR band.
    SingleBand35,
}

impl Prototype {
    /// Carrier frequencies this prototype supports, Hz.
    pub fn supported_bands(self) -> &'static [f64] {
        match self {
            Prototype::DualBand => &[2.4e9, 5.0e9, 5.25e9],
            Prototype::SingleBand35 => &[3.5e9],
        }
    }

    /// Whether `freq_hz` falls in a supported band (±10 % tolerance).
    pub fn supports(self, freq_hz: f64) -> bool {
        self.supported_bands()
            .iter()
            .any(|&b| (freq_hz - b).abs() / b < 0.1)
    }

    /// The design frequency that sets the atom spacing.
    pub fn design_frequency(self) -> f64 {
        match self {
            Prototype::DualBand => 5.0e9,
            Prototype::SingleBand35 => 3.5e9,
        }
    }
}

/// A planar array of programmable meta-atoms in the x–y plane of its local
/// frame, broadside along +y, centred at `center`.
#[derive(Clone, Debug)]
pub struct MtsArray {
    /// Which fabricated prototype this array models.
    pub prototype: Prototype,
    /// Atom grid rows (along z).
    pub rows: usize,
    /// Atom grid columns (along x).
    pub cols: usize,
    /// Atom spacing, metres (λ/2 at the design frequency).
    pub spacing: f64,
    /// Array centre in world coordinates.
    pub center: Point3,
    /// The atoms in row-major order.
    pub atoms: Vec<MetaAtom>,
    /// Half field-of-view, radians (±60° for the prototypes).
    pub half_fov: f64,
}

impl MtsArray {
    /// The paper's 16 × 16 array for a given prototype, centred at `center`.
    pub fn paper_prototype(prototype: Prototype, center: Point3) -> Self {
        MtsArray::with_size(prototype, 16, 16, center)
    }

    /// An array with an arbitrary grid size (used by the atom-count sweep,
    /// Fig 7). Spacing is λ/2 at the design frequency.
    pub fn with_size(prototype: Prototype, rows: usize, cols: usize, center: Point3) -> Self {
        assert!(rows > 0 && cols > 0, "array must have atoms");
        let spacing = wavelength(prototype.design_frequency()) / 2.0;
        MtsArray {
            prototype,
            rows,
            cols,
            spacing,
            center,
            atoms: vec![MetaAtom::pristine(); rows * cols],
            half_fov: metaai_rf::geometry::deg_to_rad(60.0),
        }
    }

    /// A square-ish array with exactly `m` atoms (`m` must have an integer
    /// factorization close to square: we use `rows = ⌊√m⌋` when it divides
    /// `m`, otherwise 1 × m).
    pub fn with_atom_count(prototype: Prototype, m: usize, center: Point3) -> Self {
        assert!(m > 0, "array must have atoms");
        let mut rows = (m as f64).sqrt() as usize;
        while rows > 1 && !m.is_multiple_of(rows) {
            rows -= 1;
        }
        MtsArray::with_size(prototype, rows, m / rows, center)
    }

    /// Number of meta-atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// World position of atom `m` (row-major index).
    pub fn atom_position(&self, m: usize) -> Point3 {
        assert!(m < self.num_atoms(), "atom index out of bounds");
        let r = m / self.cols;
        let c = m % self.cols;
        let x0 = -(self.cols as f64 - 1.0) / 2.0 * self.spacing;
        let z0 = -(self.rows as f64 - 1.0) / 2.0 * self.spacing;
        Point3::new(
            self.center.x + x0 + c as f64 * self.spacing,
            self.center.y,
            self.center.z + z0 + r as f64 * self.spacing,
        )
    }

    /// Programs every atom from a slice of codes.
    pub fn configure(&mut self, codes: &[PhaseCode]) {
        assert_eq!(codes.len(), self.num_atoms(), "one code per atom");
        for (a, &c) in self.atoms.iter_mut().zip(codes) {
            a.program(c);
        }
    }

    /// Current (programmed) codes.
    pub fn codes(&self) -> Vec<PhaseCode> {
        self.atoms.iter().map(|a| a.code).collect()
    }

    /// Draws fixed per-atom fabrication phase errors (hardware noise `N_d`).
    pub fn inject_phase_noise(&mut self, sigma_rad: f64, rng: &mut SimRng) {
        for a in &mut self.atoms {
            a.phase_error = rng.normal(0.0, sigma_rad);
        }
    }

    /// Sticks a random fraction of atoms at random states (fault injection).
    pub fn inject_stuck_faults(&mut self, fraction: f64, rng: &mut SimRng) {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        for a in &mut self.atoms {
            if rng.chance(fraction) {
                a.stuck_at = Some(PhaseCode::two_bit(rng.below(4) as u8));
            }
        }
    }

    /// The boresight (broadside) direction of the array, +y in world frame.
    pub fn boresight(&self) -> Point3 {
        Point3::new(0.0, 1.0, 0.0)
    }

    /// Angle between the array boresight and the direction to `p`, radians.
    pub fn off_boresight_angle(&self, p: Point3) -> f64 {
        let d = (p - self.center).normalized();
        d.dot(self.boresight()).clamp(-1.0, 1.0).acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_is_16_by_16() {
        let a = MtsArray::paper_prototype(Prototype::DualBand, Point3::ORIGIN);
        assert_eq!(a.num_atoms(), 256);
        assert_eq!(a.rows, 16);
        assert_eq!(a.cols, 16);
    }

    #[test]
    fn spacing_is_half_wavelength() {
        let a = MtsArray::paper_prototype(Prototype::SingleBand35, Point3::ORIGIN);
        let lam = wavelength(3.5e9);
        assert!((a.spacing - lam / 2.0).abs() < 1e-12);
    }

    #[test]
    fn atom_positions_are_centred() {
        let a = MtsArray::paper_prototype(Prototype::DualBand, Point3::new(1.0, 2.0, 3.0));
        let mean_x: f64 = (0..a.num_atoms())
            .map(|m| a.atom_position(m).x)
            .sum::<f64>()
            / a.num_atoms() as f64;
        let mean_z: f64 = (0..a.num_atoms())
            .map(|m| a.atom_position(m).z)
            .sum::<f64>()
            / a.num_atoms() as f64;
        assert!((mean_x - 1.0).abs() < 1e-9);
        assert!((mean_z - 3.0).abs() < 1e-9);
        // All atoms lie in the array plane.
        assert!((0..a.num_atoms()).all(|m| (a.atom_position(m).y - 2.0).abs() < 1e-12));
    }

    #[test]
    fn atom_count_constructor_factorizes() {
        for m in [16usize, 32, 64, 128, 256, 512, 1024] {
            let a = MtsArray::with_atom_count(Prototype::DualBand, m, Point3::ORIGIN);
            assert_eq!(a.num_atoms(), m, "m={m}");
            assert!(a.rows <= a.cols);
        }
    }

    #[test]
    fn configure_round_trips() {
        let mut a = MtsArray::with_size(Prototype::DualBand, 2, 2, Point3::ORIGIN);
        let codes: Vec<PhaseCode> = (0..4).map(|i| PhaseCode::two_bit(i as u8)).collect();
        a.configure(&codes);
        assert_eq!(a.codes(), codes);
    }

    #[test]
    fn dual_band_supports_wifi_not_nr() {
        assert!(Prototype::DualBand.supports(2.4e9));
        assert!(Prototype::DualBand.supports(5.25e9));
        assert!(!Prototype::DualBand.supports(3.5e9));
        assert!(Prototype::SingleBand35.supports(3.5e9));
        assert!(!Prototype::SingleBand35.supports(5.0e9));
    }

    #[test]
    fn off_boresight_angle_geometry() {
        let a = MtsArray::paper_prototype(Prototype::DualBand, Point3::ORIGIN);
        assert!(a.off_boresight_angle(Point3::new(0.0, 5.0, 0.0)) < 1e-9);
        let at_45 = a.off_boresight_angle(Point3::new(5.0, 5.0, 0.0));
        assert!((at_45 - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn phase_noise_injection_perturbs_atoms() {
        let mut a = MtsArray::with_size(Prototype::DualBand, 4, 4, Point3::ORIGIN);
        let mut rng = SimRng::seed_from_u64(1);
        a.inject_phase_noise(0.1, &mut rng);
        assert!(a.atoms.iter().any(|at| at.phase_error != 0.0));
    }

    #[test]
    fn stuck_fault_injection_is_fractional() {
        let mut a = MtsArray::with_size(Prototype::DualBand, 16, 16, Point3::ORIGIN);
        let mut rng = SimRng::seed_from_u64(2);
        a.inject_stuck_faults(0.25, &mut rng);
        let stuck = a.atoms.iter().filter(|at| at.stuck_at.is_some()).count();
        assert!((30..100).contains(&stuck), "stuck count {stuck}");
    }
}
