//! Beam scanning for receiver-angle estimation.
//!
//! The weight-implementation pipeline needs the receiver direction θ
//! (Eqn 6 of the paper) but not its exact position: under far-field
//! conditions the common distance term is a global phase that cancels in
//! classification. The paper estimates θ "through standard beam scanning
//! techniques" — the MTS sweeps a progressive-phase (steered-beam)
//! configuration over candidate angles and the receiver reports which one
//! maximized received power.

use crate::array::MtsArray;
use crate::atom::PhaseCode;
use crate::channel::MtsLink;
use metaai_math::C64;
use metaai_rf::geometry::Point3;
use metaai_rf::pathloss::wavenumber;

/// Computes the configuration that steers the reflected beam from the
/// transmitter direction toward azimuth `steer_rad` (in the array's
/// horizontal plane): each atom conjugates its incident phase and adds the
/// progressive phase of the steered outgoing plane wave.
pub fn steering_codes(
    array: &MtsArray,
    tx: Point3,
    steer_rad: f64,
    freq_hz: f64,
) -> Vec<PhaseCode> {
    let k0 = wavenumber(freq_hz);
    // Outgoing plane-wave direction in the horizontal plane (x–y).
    let dir = Point3::new(steer_rad.sin(), steer_rad.cos(), 0.0);
    (0..array.num_atoms())
        .map(|m| {
            let p = array.atom_position(m);
            let incident = -k0 * tx.distance(p);
            // Phase advance of the outgoing wave at this atom relative to
            // the array centre.
            let outgoing = -k0 * (p - array.center).dot(dir);
            // The atom must cancel the incident phase and impose the
            // outgoing profile.
            PhaseCode::quantize(-(incident) + outgoing, 2)
        })
        .collect()
}

/// One measurement of a beam scan: candidate steering angle and the power
/// the receiver observed.
#[derive(Clone, Copy, Debug)]
pub struct ScanPoint {
    /// Steering azimuth, radians.
    pub angle_rad: f64,
    /// Received power (arbitrary units).
    pub power: f64,
}

/// Sweeps steering angles over `[lo, hi]` in `steps` steps and returns the
/// measured power profile.
pub fn scan(
    array: &mut MtsArray,
    link: &MtsLink,
    lo_rad: f64,
    hi_rad: f64,
    steps: usize,
) -> Vec<ScanPoint> {
    assert!(steps >= 2, "need at least two scan points");
    (0..steps)
        .map(|i| {
            let angle = lo_rad + (hi_rad - lo_rad) * i as f64 / (steps - 1) as f64;
            let codes = steering_codes(array, link.tx, angle, link.freq_hz);
            array.configure(&codes);
            let h: C64 = link.channel(array);
            ScanPoint {
                angle_rad: angle,
                power: h.norm_sq(),
            }
        })
        .collect()
}

/// Runs a scan and returns the angle of maximum received power — the
/// estimated receiver azimuth.
pub fn estimate_receiver_angle(
    array: &mut MtsArray,
    link: &MtsLink,
    lo_rad: f64,
    hi_rad: f64,
    steps: usize,
) -> f64 {
    let profile = scan(array, link, lo_rad, hi_rad, steps);
    profile
        .iter()
        .max_by(|a, b| a.power.total_cmp(&b.power))
        .expect("non-empty scan")
        .angle_rad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Prototype;
    use metaai_rf::geometry::deg_to_rad;

    /// Places the Rx at `angle_deg` azimuth (measured from the array
    /// broadside +y) and checks the scan finds it.
    fn scan_finds(angle_deg: f64) -> bool {
        let center = Point3::new(0.0, 0.0, 1.1);
        let mut array = MtsArray::paper_prototype(Prototype::DualBand, center);
        let az = deg_to_rad(angle_deg);
        let tx = Point3::new(-0.5, 0.87, 1.1);
        let rx = Point3::new(3.0 * az.sin(), 3.0 * az.cos(), 1.1);
        let link = MtsLink::new(&array, tx, rx, 5.25e9);
        let est =
            estimate_receiver_angle(&mut array, &link, deg_to_rad(-60.0), deg_to_rad(60.0), 121);
        (est - az).abs() < deg_to_rad(3.0)
    }

    #[test]
    fn finds_receiver_at_broadside() {
        assert!(scan_finds(0.0));
    }

    #[test]
    fn finds_receiver_off_axis() {
        assert!(scan_finds(25.0));
        assert!(scan_finds(-40.0));
    }

    #[test]
    fn steered_beam_beats_unsteered() {
        let center = Point3::new(0.0, 0.0, 1.1);
        let mut array = MtsArray::paper_prototype(Prototype::DualBand, center);
        // Non-specular geometry: Tx at −30°, Rx at +60° azimuth, so a flat
        // (mirror-like) surface reflects away from the receiver.
        let tx = Point3::new(-0.5, 0.87, 1.1);
        let rx = Point3::new(2.6, 1.5, 1.1);
        let link = MtsLink::new(&array, tx, rx, 5.25e9);

        // Unsteered: all atoms in state 0 — specular reflection.
        let h_flat = link.channel(&array).norm_sq();

        let az = (rx.x / rx.y).atan();
        let codes = steering_codes(&array, tx, az, 5.25e9);
        array.configure(&codes);
        let h_steered = link.channel(&array).norm_sq();
        assert!(
            h_steered > 10.0 * h_flat,
            "steered {h_steered} vs flat {h_flat}"
        );
    }

    #[test]
    fn scan_profile_is_peaked() {
        let center = Point3::new(0.0, 0.0, 1.1);
        let mut array = MtsArray::paper_prototype(Prototype::DualBand, center);
        let tx = Point3::new(-0.5, 0.87, 1.1);
        let rx = Point3::new(0.0, 3.0, 1.1);
        let link = MtsLink::new(&array, tx, rx, 5.25e9);
        let profile = scan(&mut array, &link, deg_to_rad(-60.0), deg_to_rad(60.0), 61);
        let peak = profile
            .iter()
            .map(|p| p.power)
            .fold(f64::NEG_INFINITY, f64::max);
        let edge = profile.first().expect("non-empty").power;
        assert!(peak > 5.0 * edge, "peak {peak} vs edge {edge}");
    }
}
