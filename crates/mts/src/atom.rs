//! Individual programmable meta-atoms.

use metaai_math::C64;

/// A discrete phase code applied to one meta-atom.
///
/// The fabricated prototypes are 2-bit (four states); 1-bit and 3-bit
/// variants are supported for the bit-depth ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PhaseCode {
    /// The state index, `0 .. 2^bits`.
    pub index: u8,
    /// Bit depth of the phase shifter (1, 2, or 3).
    pub bits: u8,
}

impl PhaseCode {
    /// Creates a code, validating the index against the bit depth.
    pub fn new(index: u8, bits: u8) -> Self {
        assert!((1..=3).contains(&bits), "bit depth must be 1..=3");
        assert!(
            (index as usize) < (1usize << bits),
            "state {index} out of range for {bits}-bit atom"
        );
        PhaseCode { index, bits }
    }

    /// A 2-bit code — the fabricated hardware.
    pub fn two_bit(index: u8) -> Self {
        PhaseCode::new(index, 2)
    }

    /// Number of states at this bit depth.
    pub fn state_count(self) -> usize {
        1 << self.bits
    }

    /// The nominal phase shift of this state: `index · 2π / 2^bits`
    /// (0, π/2, π, 3π/2 for the 2-bit hardware).
    pub fn phase(self) -> f64 {
        self.index as f64 * std::f64::consts::TAU / self.state_count() as f64
    }

    /// The code at this depth whose phase is closest to `target` radians.
    pub fn quantize(target: f64, bits: u8) -> Self {
        assert!((1..=3).contains(&bits), "bit depth must be 1..=3");
        let n = 1usize << bits;
        let step = std::f64::consts::TAU / n as f64;
        let idx = (target.rem_euclid(std::f64::consts::TAU) / step).round() as usize % n;
        PhaseCode::new(idx as u8, bits)
    }

    /// The code π radians away (used by the intra-symbol weight flip —
    /// π is representable at every supported bit depth except 1-bit where
    /// it coincides with the other state).
    pub fn flipped(self) -> Self {
        let half = self.state_count() as u8 / 2;
        PhaseCode::new((self.index + half) % self.state_count() as u8, self.bits)
    }
}

/// One meta-atom: a programmable reflector with a discrete phase state,
/// a fixed fabrication phase error, and an optional stuck-at fault.
#[derive(Clone, Copy, Debug)]
pub struct MetaAtom {
    /// Programmed state.
    pub code: PhaseCode,
    /// Fixed fabrication phase error, radians (the hardware-noise term
    /// `N_d` of Eqn 13).
    pub phase_error: f64,
    /// When set, the atom ignores programming and stays in this state.
    pub stuck_at: Option<PhaseCode>,
    /// Reflection amplitude (1.0 nominal; PIN diode losses reduce it).
    pub amplitude: f64,
}

impl MetaAtom {
    /// A pristine 2-bit atom in state 0.
    pub fn pristine() -> Self {
        MetaAtom {
            code: PhaseCode::two_bit(0),
            phase_error: 0.0,
            stuck_at: None,
            amplitude: 1.0,
        }
    }

    /// Programs the atom; a stuck atom silently keeps its fault state.
    pub fn program(&mut self, code: PhaseCode) {
        self.code = code;
    }

    /// The state actually in effect (fault-aware).
    pub fn effective_code(&self) -> PhaseCode {
        self.stuck_at.unwrap_or(self.code)
    }

    /// The complex reflection coefficient this atom applies:
    /// `amplitude · e^{j(φ_state + φ_error)}`.
    pub fn reflection(&self) -> C64 {
        C64::from_polar(
            self.amplitude,
            self.effective_code().phase() + self.phase_error,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn two_bit_states_are_quarter_turns() {
        let phases: Vec<f64> = (0..4).map(|i| PhaseCode::two_bit(i).phase()).collect();
        assert_eq!(phases, vec![0.0, FRAC_PI_2, PI, 3.0 * FRAC_PI_2]);
    }

    #[test]
    fn quantize_picks_nearest_state() {
        assert_eq!(PhaseCode::quantize(0.1, 2).index, 0);
        assert_eq!(PhaseCode::quantize(FRAC_PI_2 - 0.1, 2).index, 1);
        assert_eq!(PhaseCode::quantize(PI + 0.3, 2).index, 2);
        assert_eq!(PhaseCode::quantize(-0.1, 2).index, 0);
        assert_eq!(PhaseCode::quantize(TAU - 0.4, 2).index, 0);
    }

    #[test]
    fn quantize_error_is_bounded_by_half_step() {
        for bits in 1u8..=3 {
            let step = TAU / (1usize << bits) as f64;
            for k in 0..100 {
                let t = k as f64 * 0.0631;
                let q = PhaseCode::quantize(t, bits).phase();
                let mut err = (t - q).rem_euclid(TAU);
                if err > PI {
                    err = TAU - err;
                }
                assert!(err <= step / 2.0 + 1e-9, "bits={bits} t={t} err={err}");
            }
        }
    }

    #[test]
    fn flip_is_pi_away() {
        for i in 0..4u8 {
            let c = PhaseCode::two_bit(i);
            let d = (c.flipped().phase() - c.phase()).rem_euclid(TAU);
            assert!((d - PI).abs() < 1e-12);
        }
    }

    #[test]
    fn flip_is_involution() {
        for i in 0..4u8 {
            let c = PhaseCode::two_bit(i);
            assert_eq!(c.flipped().flipped(), c);
        }
    }

    #[test]
    fn reflection_includes_error_and_amplitude() {
        let mut a = MetaAtom::pristine();
        a.program(PhaseCode::two_bit(1));
        a.phase_error = 0.05;
        a.amplitude = 0.9;
        let r = a.reflection();
        assert!((r.abs() - 0.9).abs() < 1e-12);
        assert!((r.arg() - (FRAC_PI_2 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn stuck_atom_ignores_programming() {
        let mut a = MetaAtom::pristine();
        a.stuck_at = Some(PhaseCode::two_bit(3));
        a.program(PhaseCode::two_bit(1));
        assert_eq!(a.effective_code().index, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_state() {
        PhaseCode::new(4, 2);
    }
}
