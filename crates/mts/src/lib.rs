//! Programmable metasurface (MTS) model.
//!
//! The paper's prototypes are 16 × 16 arrays of 2-bit meta-atoms (PIN-diode
//! phase shifters with states 0, π/2, π, 3π/2), one dual-band (2.4/5 GHz)
//! and one single-band (3.5 GHz), driven by an STM32 through banks of
//! shift registers at up to 2.56 M configuration patterns per second.
//!
//! This crate models everything the computation depends on:
//!
//! * individual meta-atoms with discrete phase states, fabrication phase
//!   error, and stuck-at faults ([`atom`]),
//! * the planar array and its two fabricated prototypes ([`mod@array`]),
//! * far-field channel synthesis — Eqn 4 of the paper, with the
//!   product-distance path loss of a reflectarray link and the element
//!   pattern that limits the field of view ([`channel`]),
//! * the weight solver that maps a desired complex weight onto discrete
//!   atom states — Eqn 7, its multipath-aware variant Eqn 8, and the
//!   joint multi-target form used by both parallelism schemes
//!   ([`solver`]),
//! * beam scanning for receiver-angle estimation ([`beamscan`]),
//! * the controller timing/energy model ([`control`]), and
//! * the weight-distribution-density metric of Appendix A.2 ([`wdd`]).

pub mod array;
pub mod atom;
pub mod beamscan;
pub mod channel;
pub mod control;
pub mod solver;
pub mod wdd;

pub use array::{MtsArray, Prototype};
pub use atom::{MetaAtom, PhaseCode};
pub use channel::MtsLink;
pub use solver::WeightSolver;
