//! Pinned telemetry totals for the inference engine.
//!
//! The chip/sample/draw counters are derived from the engine's documented
//! accounting (`chips = rows × draws-per-row`, one aggregated AWGN draw
//! per output row, per-chip draws only in trace mode), so these tests pin
//! the *model*: if an engine change alters how much physical work one
//! sample represents, the expected constants here must be re-derived, not
//! merely re-recorded.
//!
//! All tests share the process-global registry, so they serialize on one
//! mutex and reset the instruments while holding it.

use metaai::engine::OtaEngine;
use metaai::ota::OtaConditions;
use metaai_math::rng::SimRng;
use metaai_math::{CMat, CVec};
use metaai_telemetry::{MetricValue, Registry};
use std::sync::{Mutex, MutexGuard, OnceLock};

const ROWS: usize = 4; // output classes = channel rows
const U: usize = 6; // symbols per sample
const N: usize = 10; // samples per batch
const SLOTS: usize = 2; // metaai_phy::shaping::SLOTS_PER_SYMBOL

/// Locks the global registry for one test: instruments registered,
/// telemetry enabled, all values reset.
fn lock_registry() -> (MutexGuard<'static, ()>, &'static Registry) {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let registry = metaai::telemetry::install();
    registry.set_enabled(true);
    registry.reset();
    (guard, registry)
}

fn counter(registry: &Registry, name: &str) -> u64 {
    for m in registry.snapshot() {
        if m.name == name {
            match m.value {
                MetricValue::Counter(v) => return v,
                other => panic!("{name} is not a counter: {other:?}"),
            }
        }
    }
    panic!("{name} not registered");
}

fn histogram_count(registry: &Registry, name: &str) -> u64 {
    for m in registry.snapshot() {
        if m.name == name {
            match m.value {
                MetricValue::Histogram(h) => return h.count,
                other => panic!("{name} is not a histogram: {other:?}"),
            }
        }
    }
    panic!("{name} not registered");
}

fn engine_and_inputs() -> (CMat, Vec<CVec>) {
    let mut rng = SimRng::seed_from_u64(17);
    let h = CMat::from_fn(ROWS, U, |_, _| rng.complex_gaussian(1.0));
    let inputs = (0..N)
        .map(|_| CVec::from_fn(U, |_| rng.complex_gaussian(1.0)))
        .collect();
    (h, inputs)
}

#[test]
fn noiseless_batch_counters_match_the_chip_accounting() {
    let (guard, registry) = lock_registry();
    let (h, inputs) = engine_and_inputs();
    let engine = OtaEngine::new(&h);

    let predictions = engine.batch_predict_with(&inputs, 5, 0, |_| OtaConditions::ideal(U));
    assert_eq!(predictions.len(), N);

    assert_eq!(counter(registry, "metaai.core.engine.batches"), 1);
    assert_eq!(counter(registry, "metaai.core.engine.samples"), N as u64);
    // Cancellation on: each of the ROWS accumulations covers U symbols
    // at SLOTS chips each.
    assert_eq!(
        counter(registry, "metaai.core.engine.chips"),
        (N * ROWS * U * SLOTS) as u64
    );
    // Ideal conditions are noiseless — no AWGN draws at all.
    assert_eq!(counter(registry, "metaai.core.engine.awgn_draws"), 0);
    assert_eq!(counter(registry, "metaai.core.engine.traces"), 0);
    assert_eq!(
        histogram_count(registry, "metaai.core.engine.sample_seconds"),
        N as u64
    );
    drop(guard);
}

#[test]
fn noisy_scoring_draws_one_aggregate_per_row() {
    let (guard, registry) = lock_registry();
    let (h, inputs) = engine_and_inputs();
    let engine = OtaEngine::new(&h);

    let mut noisy = OtaConditions::ideal(U);
    noisy.awgn.variance = 0.05;
    let mut rng = SimRng::seed_from_u64(23);
    let _scores = engine.scores(&inputs[0], &noisy, &mut rng);

    assert_eq!(counter(registry, "metaai.core.engine.samples"), 1);
    // The scoring kernel aggregates each row's chip noise into a single
    // row-level draw.
    assert_eq!(
        counter(registry, "metaai.core.engine.awgn_draws"),
        ROWS as u64
    );
    drop(guard);
}

#[test]
fn trace_mode_draws_noise_per_chip() {
    let (guard, registry) = lock_registry();
    let (h, inputs) = engine_and_inputs();
    let engine = OtaEngine::new(&h);

    let mut noisy = OtaConditions::ideal(U);
    noisy.awgn.variance = 0.05;
    let mut rng = SimRng::seed_from_u64(29);
    let _outcome = engine.traced(&inputs[0], &noisy, &mut rng);

    let chips = (ROWS * U * SLOTS) as u64;
    assert_eq!(counter(registry, "metaai.core.engine.traces"), 1);
    assert_eq!(counter(registry, "metaai.core.engine.samples"), 1);
    assert_eq!(counter(registry, "metaai.core.engine.chips"), chips);
    // Trace mode resolves noise chip by chip, not per row.
    assert_eq!(counter(registry, "metaai.core.engine.awgn_draws"), chips);
    drop(guard);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let (guard, registry) = lock_registry();
    registry.set_enabled(false);
    let (h, inputs) = engine_and_inputs();
    let engine = OtaEngine::new(&h);

    let predictions = engine.batch_predict_with(&inputs, 5, 0, |_| OtaConditions::ideal(U));
    assert_eq!(predictions.len(), N);

    registry.set_enabled(true); // snapshots are unaffected by the flag
    for name in [
        "metaai.core.engine.batches",
        "metaai.core.engine.samples",
        "metaai.core.engine.chips",
        "metaai.core.engine.awgn_draws",
    ] {
        assert_eq!(counter(registry, name), 0, "{name} must stay zero");
    }
    assert_eq!(
        histogram_count(registry, "metaai.core.engine.sample_seconds"),
        0
    );
    drop(guard);
}
