//! MetaAI — over-the-air neural network inference through a programmable
//! metasurface.
//!
//! This crate is the paper's primary contribution: it glues the substrates
//! (`metaai-rf`, `metaai-mts`, `metaai-phy`, `metaai-nn`,
//! `metaai-datasets`) into the end-to-end system of Fig 1(c):
//!
//! 1. a complex linear network is trained digitally ([`metaai_nn`]),
//! 2. its weights are mapped onto per-symbol metasurface configurations
//!    ([`mapper`], Eqns 5–8),
//! 3. an IoT transmitter sends its raw modulated data; the metasurface
//!    reprograms the channel symbol-by-symbol so the receiver's
//!    accumulation *is* the network's output ([`ota`], Eqn 3),
//! 4. with multipath cancellation via zero-mean chips, CDFA clock
//!    synchronization, and noise-alleviation training layered on top.
//!
//! Higher-level capabilities: antenna- and subcarrier-parallelism
//! ([`parallel`], Eqns 9–10), multi-sensor fusion ([`fusion`],
//! Eqns 11–12), the end-to-end energy/latency model of Appendix A.4
//! ([`energy`]), receiver-mobility recalibration ([`mobility`]), and the
//! confidence-feedback reconfiguration protocol ([`feedback`]). Stacked
//! L-layer cascades are modeled in [`metaai_sim`] and deployed through
//! the same [`pipeline::SystemBuilder`] via
//! [`layers(L)`](pipeline::SystemBuilder::layers).
//!
//! Start with [`config::SystemConfig`] and [`pipeline::MetaAiSystem`]; the
//! `examples/` directory of the workspace shows complete flows.

pub mod config;
pub mod energy;
pub mod engine;
pub mod feedback;
pub mod fusion;
pub mod mapper;
pub mod mobility;
pub mod ota;
pub mod parallel;
pub mod pipeline;
pub mod privacy;
pub mod telemetry;
pub mod trace;

pub use config::SystemConfig;
pub use engine::{InferenceOutcome, InferenceRequest, OtaEngine};
pub use mapper::{WeightMapper, WeightSchedule};
pub use ota::{OtaConditions, OtaReceiver};
pub use pipeline::{MetaAiSystem, StackDeployment, SystemBuilder};
