//! Receiver mobility and recalibration — the Sec 7 discussion made
//! concrete.
//!
//! When the receiver moves, the precomputed mapping between MTS
//! configurations and logical weights goes stale. Recovery requires a beam
//! scan (angle re-estimation) plus a full schedule re-solve; the system
//! supports a target only while that recalibration loop outruns the
//! receiver's angular drift. This module quantifies the race and models
//! the paper's feedback-protocol reconfiguration.

use crate::config::SystemConfig;
use metaai_mts::control::ControlModel;
use metaai_rf::geometry::{deg_to_rad, place_at, rad_to_deg};

/// Parameters of the recalibration race.
#[derive(Clone, Copy, Debug)]
pub struct MobilityModel {
    /// Beam-scan steps per recalibration.
    pub scan_steps: usize,
    /// Measured time to re-solve the schedule, seconds.
    pub solve_time_s: f64,
    /// Angular tolerance before accuracy degrades, radians. Roughly the
    /// array's beamwidth: λ / (N·d) ≈ 2/N for a half-wave-spaced array.
    pub angle_tolerance_rad: f64,
}

impl MobilityModel {
    /// Defaults for the 16 × 16 prototype: a 121-step scan and the
    /// array's ≈ 7° beamwidth.
    pub fn paper_prototype(solve_time_s: f64) -> Self {
        MobilityModel {
            scan_steps: 121,
            solve_time_s,
            angle_tolerance_rad: 2.0 / 16.0,
        }
    }

    /// Total recalibration latency, seconds.
    pub fn recalibration_s(&self, control: &ControlModel) -> f64 {
        control.recalibration_time_s(self.scan_steps, self.solve_time_s)
    }

    /// The maximum tangential receiver speed (m/s) the system can track at
    /// `distance` metres: the receiver must not cross the angular
    /// tolerance within one recalibration period.
    pub fn max_trackable_speed(&self, control: &ControlModel, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        self.angle_tolerance_rad * distance_m / self.recalibration_s(control)
    }

    /// Whether a receiver moving at `speed_mps` tangentially at
    /// `distance_m` stays within tolerance between recalibrations.
    pub fn supports(&self, control: &ControlModel, distance_m: f64, speed_mps: f64) -> bool {
        speed_mps <= self.max_trackable_speed(control, distance_m)
    }
}

/// A deterministic receiver trajectory for driving drifting-channel
/// simulations: the receiver walks an arc of constant radius around the
/// metasurface at constant tangential speed, sampled every `step_s`
/// seconds. Round 0 is the deployment geometry; each later round moves
/// the receiver by `speed_mps · step_s` metres along the arc (decreasing
/// azimuth, the same walk the mobility benchmark traces).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftSchedule {
    /// Tangential receiver speed, m/s.
    pub speed_mps: f64,
    /// Arc radius around the metasurface centre, metres.
    pub radius_m: f64,
    /// Simulated time between rounds, seconds.
    pub step_s: f64,
    /// Azimuth at round 0, degrees (the solved deployment angle).
    pub start_angle_deg: f64,
}

impl DriftSchedule {
    /// The benchmark walk: the paper geometry's 3 m radius and 40° start,
    /// sampled at 5 Hz.
    pub fn paper_walk(speed_mps: f64) -> Self {
        DriftSchedule {
            speed_mps,
            radius_m: 3.0,
            step_s: 0.2,
            start_angle_deg: 40.0,
        }
    }

    /// Azimuth at `round`, degrees.
    pub fn angle_at(&self, round: u64) -> f64 {
        let deg_per_step = rad_to_deg(self.speed_mps * self.step_s / self.radius_m);
        self.start_angle_deg - deg_per_step * round as f64
    }

    /// `base` with the receiver moved to this schedule's position at
    /// `round` (same height as the deployment receiver, everything else
    /// untouched).
    pub fn config_at(&self, base: &SystemConfig, round: u64) -> SystemConfig {
        let rx = place_at(
            base.mts_center,
            self.radius_m,
            deg_to_rad(90.0 - self.angle_at(round)),
            base.rx.z,
        );
        SystemConfig { rx, ..base.clone() }
    }
}

/// How stale a schedule becomes when the receiver moves from the solved
/// position: the fraction of the angular tolerance consumed.
pub fn staleness(config: &SystemConfig, new_rx_angle_rad: f64, model: &MobilityModel) -> f64 {
    let old = (config.rx.x - config.mts_center.x).atan2(config.rx.y - config.mts_center.y);
    (new_rx_angle_rad - old).abs() / model.angle_tolerance_rad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recalibration_dominated_by_solve_time() {
        let m = MobilityModel::paper_prototype(0.05);
        let c = ControlModel::default();
        let t = m.recalibration_s(&c);
        assert!(t > 0.05 && t < 0.06, "recalibration {t}");
    }

    #[test]
    fn walking_speed_is_trackable_at_room_scale() {
        // With a 50 ms solve, a receiver at 3 m can move ≈ 7 m/s — a
        // walking user (1.5 m/s) is comfortably supported.
        let m = MobilityModel::paper_prototype(0.05);
        let c = ControlModel::default();
        assert!(m.supports(&c, 3.0, 1.5));
    }

    #[test]
    fn fast_targets_at_close_range_are_not() {
        let m = MobilityModel::paper_prototype(0.5);
        let c = ControlModel::default();
        // A drone at 0.5 m doing 10 m/s crosses the beam far faster than a
        // half-second recalibration.
        assert!(!m.supports(&c, 0.5, 10.0));
    }

    #[test]
    fn max_speed_scales_with_distance() {
        let m = MobilityModel::paper_prototype(0.1);
        let c = ControlModel::default();
        let near = m.max_trackable_speed(&c, 1.0);
        let far = m.max_trackable_speed(&c, 10.0);
        assert!((far / near - 10.0).abs() < 1e-9);
    }

    #[test]
    fn drift_schedule_starts_at_the_deployment_geometry_and_walks_the_arc() {
        let base = SystemConfig::paper_default();
        let walk = DriftSchedule::paper_walk(1.5);
        assert_eq!(walk.angle_at(0), 40.0);
        let at0 = walk.config_at(&base, 0);
        assert!(
            (at0.rx.x - base.rx.x).abs() < 1e-9
                && (at0.rx.y - base.rx.y).abs() < 1e-9
                && (at0.rx.z - base.rx.z).abs() < 1e-9,
            "round 0 is the solved position ({:?} vs {:?})",
            at0.rx,
            base.rx
        );
        // 1.5 m/s · 0.2 s on a 3 m arc = 0.1 rad ≈ 5.73° per round,
        // decreasing azimuth.
        let per_step = walk.angle_at(0) - walk.angle_at(1);
        assert!((per_step - rad_to_deg(0.1)).abs() < 1e-9, "{per_step}");
        // The receiver stays on the arc.
        for round in [1u64, 5, 20] {
            let cfg = walk.config_at(&base, round);
            let dx = cfg.rx.x - base.mts_center.x;
            let dy = cfg.rx.y - base.mts_center.y;
            assert!(((dx * dx + dy * dy).sqrt() - 3.0).abs() < 1e-9);
        }
        // A zero-speed schedule never moves: the static baseline.
        let frozen = DriftSchedule::paper_walk(0.0);
        assert_eq!(frozen.angle_at(50), 40.0);
    }

    #[test]
    fn staleness_zero_at_current_angle() {
        let cfg = SystemConfig::paper_default();
        let m = MobilityModel::paper_prototype(0.05);
        let angle = (cfg.rx.x - cfg.mts_center.x).atan2(cfg.rx.y - cfg.mts_center.y);
        assert!(staleness(&cfg, angle, &m) < 1e-12);
        assert!(staleness(&cfg, angle + 0.2, &m) > 1.0);
    }
}
