//! Quantifying the "structurally private" claim.
//!
//! The paper's introduction argues MetaAI is privacy-preserving because
//! the edge server "only receives pre-processed AI inference results …
//! avoiding the transmission of raw data". This module makes that claim
//! measurable: given everything the server legitimately holds — the
//! deployed channel matrix `H ∈ ℂ^{R×U}` and the `R` complex
//! accumulations `y = H·x` of one inference — how well can it reconstruct
//! the raw input `x ∈ ℂ^U`?
//!
//! The best linear-unbiased attack is the minimum-norm least-squares
//! solution `x̂ = Hᴴ(HHᴴ)⁻¹y`: exact on the `R`-dimensional row space of
//! `H`, blind to the `(U − R)`-dimensional null space. With `R = 10`
//! classes and `U = 784` symbols the server can recover at most ~1.3 % of
//! the signal energy — that is the structural privacy, measured.

use metaai_math::{CMat, CVec};

/// Result of one reconstruction attack.
#[derive(Clone, Copy, Debug)]
pub struct ReconstructionReport {
    /// Fraction of the input's energy the attacker recovered, in `[0, 1]`
    /// (1 = perfect reconstruction; raw-data transmission scores 1).
    pub recovered_energy: f64,
    /// Normalized mean-squared reconstruction error
    /// `‖x − x̂‖² / ‖x‖²` (1 when the attacker learns nothing beyond 0).
    pub nmse: f64,
    /// Dimensions the observation exposes (`R`) vs hides (`U − R`).
    pub exposed_dims: usize,
    /// Hidden dimensions.
    pub hidden_dims: usize,
}

/// Runs the min-norm least-squares reconstruction attack for one input.
///
/// Returns `None` when the Gram matrix `HHᴴ` is singular (degenerate
/// channel rows).
pub fn reconstruction_attack(h: &CMat, x: &CVec) -> Option<ReconstructionReport> {
    let r = h.rows();
    let u = h.cols();
    assert_eq!(u, x.len(), "one channel per symbol");
    assert!(r <= u, "more observations than unknowns is out of scope");

    // What the server observes.
    let y = h.matvec(x);

    // Min-norm LS: x̂ = Hᴴ (H Hᴴ)⁻¹ y.
    let gram = h.matmul(&h.hermitian());
    let z = gram.solve(&y)?;
    let x_hat = h.hermitian().matvec(&z);

    let total: f64 = x.norm() * x.norm();
    if total == 0.0 {
        return None;
    }
    let err = (&x_hat - x).norm();
    let nmse = (err * err) / total;
    let recovered = (x_hat.norm() * x_hat.norm()) / total;

    Some(ReconstructionReport {
        recovered_energy: recovered,
        nmse,
        exposed_dims: r,
        hidden_dims: u - r,
    })
}

/// Average reconstruction report over a set of inputs.
pub fn attack_dataset(h: &CMat, inputs: &[CVec]) -> Option<ReconstructionReport> {
    let mut recovered = 0.0;
    let mut nmse = 0.0;
    let mut n = 0usize;
    let mut dims = (0usize, 0usize);
    for x in inputs {
        let rep = reconstruction_attack(h, x)?;
        recovered += rep.recovered_energy;
        nmse += rep.nmse;
        dims = (rep.exposed_dims, rep.hidden_dims);
        n += 1;
    }
    if n == 0 {
        return None;
    }
    Some(ReconstructionReport {
        recovered_energy: recovered / n as f64,
        nmse: nmse / n as f64,
        exposed_dims: dims.0,
        hidden_dims: dims.1,
    })
}

/// The theoretical expected recovered-energy fraction for an isotropic
/// input: `R / U` — the row-space share of the signal space.
pub fn isotropic_bound(r: usize, u: usize) -> f64 {
    r as f64 / u as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_math::rng::SimRng;

    fn random_channel(r: usize, u: usize, seed: u64) -> CMat {
        let mut rng = SimRng::seed_from_u64(seed);
        CMat::from_fn(r, u, |_, _| rng.complex_gaussian(1.0))
    }

    fn random_input(u: usize, seed: u64) -> CVec {
        let mut rng = SimRng::seed_from_u64(seed);
        CVec::from_fn(u, |_| rng.complex_gaussian(1.0))
    }

    #[test]
    fn recovery_matches_the_row_space_share() {
        let (r, u) = (10, 784);
        let h = random_channel(r, u, 1);
        let inputs: Vec<CVec> = (0..20).map(|k| random_input(u, 100 + k)).collect();
        let rep = attack_dataset(&h, &inputs).expect("attack runs");
        let bound = isotropic_bound(r, u);
        assert!(
            (rep.recovered_energy - bound).abs() < 0.01,
            "recovered {:.4} vs R/U = {bound:.4}",
            rep.recovered_energy
        );
        assert!(rep.nmse > 0.95, "NMSE {}", rep.nmse);
        assert_eq!(rep.hidden_dims, u - r);
    }

    #[test]
    fn square_channel_reconstructs_perfectly() {
        // With R = U the observation is invertible: zero privacy.
        let h = random_channel(8, 8, 2);
        let x = random_input(8, 3);
        let rep = reconstruction_attack(&h, &x).expect("invertible");
        assert!(rep.nmse < 1e-9, "NMSE {}", rep.nmse);
        assert!((rep.recovered_energy - 1.0).abs() < 1e-9);
        assert_eq!(rep.hidden_dims, 0);
    }

    #[test]
    fn reconstruction_is_exact_on_the_row_space() {
        // An input built from the channel's rows is fully exposed.
        let h = random_channel(4, 32, 4);
        let coeffs = random_input(4, 5);
        let x = h.hermitian().matvec(&coeffs);
        let rep = reconstruction_attack(&h, &x).expect("attack runs");
        assert!(
            rep.nmse < 1e-9,
            "row-space input must reconstruct: {}",
            rep.nmse
        );
    }

    #[test]
    fn degenerate_channel_is_reported() {
        // Two identical rows → singular Gram matrix.
        let mut h = random_channel(2, 8, 6);
        for c in 0..8 {
            let v = h[(0, c)];
            h[(1, c)] = v;
        }
        assert!(reconstruction_attack(&h, &random_input(8, 7)).is_none());
    }

    #[test]
    fn more_outputs_leak_more() {
        let u = 128;
        let x: Vec<CVec> = (0..10).map(|k| random_input(u, 200 + k)).collect();
        let leak_at = |r: usize| {
            attack_dataset(&random_channel(r, u, r as u64), &x)
                .expect("attack")
                .recovered_energy
        };
        assert!(leak_at(4) < leak_at(32));
        assert!(leak_at(32) < leak_at(96));
    }
}
