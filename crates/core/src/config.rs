//! System configuration: geometry, radio parameters, and scheme toggles.

use metaai_mts::array::Prototype;
use metaai_phy::sync::SyncErrorModel;
use metaai_phy::Modulation;
use metaai_rf::environment::EnvironmentKind;
use metaai_rf::geometry::{deg_to_rad, place_at, Point3};

/// Full deployment configuration of one MetaAI installation.
///
/// Defaults mirror the paper's setup (Sec 4): dual-band prototype at
/// 5.25 GHz, 256-QAM at 1 Msym/s, Tx–MTS 1 m at 30° incidence, MTS–Rx 3 m
/// at 40° emergence, all devices at 1.1 m height, office environment.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Which fabricated metasurface prototype to model.
    pub prototype: Prototype,
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Data modulation.
    pub modulation: Modulation,
    /// Symbol rate, symbols per second.
    pub symbol_rate: f64,
    /// Metasurface centre position.
    pub mts_center: Point3,
    /// Transmitter position.
    pub tx: Point3,
    /// Receiver position.
    pub rx: Point3,
    /// Propagation environment archetype.
    pub environment: EnvironmentKind,
    /// Safety factor mapping the largest network weight onto the
    /// hardware's reachable radius (κ < 1 keeps the solver away from the
    /// boundary where quantization error grows).
    pub kappa: f64,
    /// Receiver SNR anchored to the MTS-path signal power, dB.
    pub snr_db: f64,
    /// Per-atom fabrication phase error σ, radians (hardware noise `N_d`).
    pub atom_phase_noise: f64,
    /// Whether the intra-symbol multipath cancellation scheme is active.
    pub cancellation: bool,
    /// Residual clock-synchronization error left after coarse-grained
    /// detection (`None` models a perfectly shared clock). The default is
    /// the Gamma fit of Fig 12; CDFA's fine-grained adjustment is the
    /// matching training augmentation.
    pub sync_error: Option<SyncErrorModel>,
    /// Experiment master seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_default()
    }
}

impl SystemConfig {
    /// The paper's default experimental setup.
    pub fn paper_default() -> Self {
        let mts_center = Point3::new(0.0, 0.0, 1.1);
        // Azimuths measured from the array broadside (+y): Tx at −30°,
        // Rx at +40°, both in front of the surface.
        let tx = place_at(mts_center, 1.0, deg_to_rad(90.0 + 30.0), 1.1);
        let rx = place_at(mts_center, 3.0, deg_to_rad(90.0 - 40.0), 1.1);
        SystemConfig {
            prototype: Prototype::DualBand,
            freq_hz: 5.25e9,
            modulation: Modulation::Qam256,
            symbol_rate: 1e6,
            mts_center,
            tx,
            rx,
            environment: EnvironmentKind::Office,
            kappa: 0.7,
            snr_db: 20.0,
            atom_phase_noise: 0.08,
            cancellation: true,
            sync_error: Some(SyncErrorModel::default()),
            seed: 1,
        }
    }

    /// Symbol duration, seconds.
    pub fn symbol_period_s(&self) -> f64 {
        1.0 / self.symbol_rate
    }

    /// Moves the receiver to `distance` metres from the MTS at `angle_deg`
    /// azimuth from broadside, keeping the height.
    pub fn with_rx_at(mut self, distance: f64, angle_deg: f64) -> Self {
        self.rx = place_at(
            self.mts_center,
            distance,
            deg_to_rad(90.0 - angle_deg),
            self.mts_center.z,
        );
        self
    }

    /// Moves the transmitter to `distance` metres from the MTS at
    /// `angle_deg` azimuth from broadside.
    pub fn with_tx_at(mut self, distance: f64, angle_deg: f64) -> Self {
        self.tx = place_at(
            self.mts_center,
            distance,
            deg_to_rad(90.0 + angle_deg),
            self.mts_center.z,
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let c = SystemConfig::paper_default();
        assert!((c.tx.distance(c.mts_center) - 1.0).abs() < 1e-9);
        assert!((c.rx.distance(c.mts_center) - 3.0).abs() < 1e-9);
        assert_eq!(c.tx.z, 1.1);
        assert!((c.freq_hz - 5.25e9).abs() < 1.0);
        assert_eq!(c.modulation, Modulation::Qam256);
    }

    #[test]
    fn symbol_period_at_1msps() {
        let c = SystemConfig::paper_default();
        assert!((c.symbol_period_s() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn with_rx_at_moves_receiver() {
        let c = SystemConfig::paper_default().with_rx_at(10.0, 0.0);
        assert!((c.rx.distance(c.mts_center) - 10.0).abs() < 1e-9);
        // Broadside: straight out along +y.
        assert!(c.rx.y > 9.9);
    }

    #[test]
    fn with_tx_at_moves_transmitter() {
        let c = SystemConfig::paper_default().with_tx_at(5.0, 60.0);
        assert!((c.tx.distance(c.mts_center) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tx_and_rx_are_in_front_of_the_surface() {
        let c = SystemConfig::paper_default();
        assert!(c.tx.y > 0.0, "Tx must face the array broadside");
        assert!(c.rx.y > 0.0, "Rx must face the array broadside");
    }
}
