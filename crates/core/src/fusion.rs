//! Multi-sensor and multi-modality late fusion — Sec 3.4, Eqns 11–12.
//!
//! Linear networks make sensor fusion trivial: weights attached to
//! different sensors' inputs are independent, so the sensors simply take
//! turns transmitting through the *same* metasurface (time division) and
//! the receiver keeps accumulating:
//!
//! ```text
//! y_r^multi = | Σ_s Σ_i H_r^s(t_i) · x_i^s |
//! ```
//!
//! Implementation-wise that is exactly a single network over the
//! *concatenation* of the sensors' symbol vectors — which is how we train
//! and deploy it. Accuracy rises with sensor count because per-sensor
//! noise is independent while the class evidence is shared.

use metaai_math::CVec;
use metaai_nn::data::ComplexDataset;
use metaai_telemetry::Counter;
use std::sync::OnceLock;

/// Fusion-stage instruments, registered once with the global registry.
struct FusionMetrics {
    inferences: Counter,
    segments: Counter,
}

fn metrics() -> &'static FusionMetrics {
    static METRICS: OnceLock<FusionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        FusionMetrics {
            inferences: r.counter("metaai.core.fusion.inferences"),
            segments: r.counter("metaai.core.fusion.segments"),
        }
    })
}

/// Registers the fusion layer's instruments with the global registry.
pub fn register_metrics() {
    let _ = metrics();
}

/// Concatenates the first `n_sensors` views of a multi-sensor dataset into
/// one time-division dataset. All views must be index-aligned (same event
/// order and labels), as produced by `metaai_datasets::multisensor`.
pub fn fuse_views(views: &[ComplexDataset], n_sensors: usize) -> ComplexDataset {
    assert!(n_sensors >= 1, "need at least one sensor");
    assert!(
        n_sensors <= views.len(),
        "asked for {n_sensors} sensors, have {}",
        views.len()
    );
    let used = &views[..n_sensors];
    let n = used[0].len();
    for (s, v) in used.iter().enumerate() {
        assert_eq!(v.len(), n, "sensor {s} has mismatched event count");
        assert_eq!(
            v.labels, used[0].labels,
            "sensor {s} labels must align event-by-event"
        );
    }

    let inputs: Vec<CVec> = (0..n)
        .map(|i| {
            let mut combined = Vec::new();
            for v in used {
                combined.extend_from_slice(v.inputs[i].as_slice());
            }
            CVec::from_vec(combined)
        })
        .collect();
    ComplexDataset::new(inputs, used[0].labels.clone(), used[0].num_classes)
}

/// The per-sensor segment boundaries of a fused input: sensor `s` occupies
/// `offsets[s] .. offsets[s + 1]`.
pub fn segment_offsets(views: &[ComplexDataset], n_sensors: usize) -> Vec<usize> {
    let mut offsets = vec![0];
    for v in &views[..n_sensors] {
        offsets.push(offsets.last().expect("non-empty") + v.input_len());
    }
    offsets
}

/// Runs one fused inference: the sensors transmit their segments in turn
/// (time division) and the receiver accumulates across all of them — the
/// over-the-air realization of Eqn 11. `segments` are the per-sensor symbol
/// vectors, in deployment order; their concatenation must match the fused
/// system's input length.
pub fn infer_fused(
    system: &crate::pipeline::MetaAiSystem,
    segments: &[&CVec],
    conditions: crate::ota::OtaConditions,
    rng: &mut metaai_math::rng::SimRng,
) -> crate::engine::InferenceOutcome {
    if metaai_telemetry::enabled() {
        let m = metrics();
        m.inferences.inc();
        m.segments.add(segments.len() as u64);
    }
    let mut combined = Vec::new();
    for seg in segments {
        combined.extend_from_slice(seg.as_slice());
    }
    let fused = CVec::from_vec(combined);
    let request = crate::engine::InferenceRequest::new(&fused, conditions);
    system.run(&request, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_math::C64;

    fn view(len: usize, n: usize, mark: f64) -> ComplexDataset {
        let inputs: Vec<CVec> = (0..n)
            .map(|i| CVec::from_fn(len, |k| C64::new(mark, (i * 10 + k) as f64)))
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        ComplexDataset::new(inputs, labels, 2)
    }

    #[test]
    fn fusing_concatenates_in_order() {
        let views = [view(3, 4, 1.0), view(5, 4, 2.0)];
        let fused = fuse_views(&views, 2);
        assert_eq!(fused.input_len(), 8);
        assert_eq!(fused.len(), 4);
        // First segment from sensor 0, second from sensor 1.
        assert_eq!(fused.inputs[0][0].re, 1.0);
        assert_eq!(fused.inputs[0][3].re, 2.0);
    }

    #[test]
    fn one_sensor_is_identity() {
        let views = [view(4, 3, 1.0), view(4, 3, 2.0)];
        let fused = fuse_views(&views, 1);
        assert_eq!(fused.inputs, views[0].inputs);
    }

    #[test]
    fn segment_offsets_partition_the_input() {
        let views = [view(3, 2, 0.0), view(5, 2, 0.0), view(2, 2, 0.0)];
        assert_eq!(segment_offsets(&views, 3), vec![0, 3, 8, 10]);
    }

    #[test]
    fn labels_survive_fusion() {
        let views = [view(2, 6, 1.0), view(2, 6, 2.0)];
        let fused = fuse_views(&views, 2);
        assert_eq!(fused.labels, views[0].labels);
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn rejects_misaligned_labels() {
        let a = view(2, 4, 1.0);
        let mut b = view(2, 4, 2.0);
        b.labels[0] = 1 - b.labels[0];
        fuse_views(&[a, b], 2);
    }

    #[test]
    fn fused_inference_matches_direct_concatenation() {
        use crate::ota::OtaConditions;
        use metaai_math::rng::SimRng;
        use metaai_nn::train::{toy_problem, TrainConfig};

        let views = [view(6, 8, 1.0), view(6, 8, 2.0)];
        let fused_data = fuse_views(&views, 2);
        let train = toy_problem(2, fused_data.input_len(), 30, 0.3, 60, 160);
        let system = crate::pipeline::MetaAiSystem::builder()
            .config(crate::config::SystemConfig::paper_default())
            .train_and_deploy(
                &train,
                &TrainConfig {
                    epochs: 5,
                    ..TrainConfig::default()
                },
            );

        let cond = OtaConditions::ideal(fused_data.input_len());
        let segments = [&views[0].inputs[0], &views[1].inputs[0]];
        let mut r1 = SimRng::seed_from_u64(1);
        let outcome = infer_fused(&system, &segments, cond.clone(), &mut r1);
        let mut r2 = SimRng::seed_from_u64(1);
        let direct = system
            .engine()
            .scores(&fused_data.inputs[0], &cond, &mut r2);
        assert_eq!(outcome.scores, direct);
        assert!(outcome.predicted < 2);
    }
}
