//! The end-to-end MetaAI system: train → map → realize → infer over the
//! air.

use crate::config::SystemConfig;
use crate::engine::{InferenceOutcome, InferenceRequest, OtaEngine};
use crate::mapper::{WeightMapper, WeightSchedule};
use crate::ota::{realize_channels, signal_power, OtaConditions};
use metaai_math::rng::SimRng;
use metaai_math::{CMat, CPlanes, CVec, C64};
use metaai_mts::array::MtsArray;
use metaai_nn::complex_lnn::ComplexLnn;
use metaai_nn::data::ComplexDataset;
use metaai_nn::engine::TrainEngine;
use metaai_nn::train::TrainConfig;
use metaai_rf::environment::{EnvChannel, Environment};
use metaai_rf::noise::Awgn;
use metaai_sim::{realize_stack, train_stack, StackSchedule, StackSolver, StackSpec, StackWeights};
use metaai_telemetry::{Counter, Histogram};
use std::sync::OnceLock;

/// Pipeline-stage instruments, registered once with the global registry.
struct PipelineMetrics {
    deploys: Counter,
    accuracy_runs: Counter,
    deploy_seconds: Histogram,
    accuracy_seconds: Histogram,
}

fn metrics() -> &'static PipelineMetrics {
    static METRICS: OnceLock<PipelineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        PipelineMetrics {
            deploys: r.counter("metaai.core.pipeline.deploys"),
            accuracy_runs: r.counter("metaai.core.pipeline.accuracy_runs"),
            deploy_seconds: r.latency_histogram("metaai.core.pipeline.deploy_seconds"),
            accuracy_seconds: r.latency_histogram("metaai.core.pipeline.accuracy_seconds"),
        }
    })
}

/// Registers the pipeline's instruments with the global telemetry registry.
pub fn register_metrics() {
    let _ = metrics();
}

/// A deployed L-layer cascade ([`metaai_sim`]): the stack's geometry,
/// the trained per-layer weight factors, and the per-layer 2-bit
/// programme realizing them.
pub struct StackDeployment {
    /// Per-layer surfaces and hop links, in path order.
    pub geometry: metaai_sim::StackGeometry,
    /// Trained layer factors `W_l` (their entrywise product is the
    /// system's effective network).
    pub weights: StackWeights,
    /// Per-layer residual-compensated 2-bit schedules.
    pub schedule: StackSchedule,
}

/// A fully deployed MetaAI installation: the trained digital network, the
/// metasurface programme realizing it, and the physical channels the
/// receiver will see.
pub struct MetaAiSystem {
    /// Deployment configuration.
    pub config: SystemConfig,
    /// The metasurface (with fabrication phase errors drawn from the
    /// config's seed).
    pub array: MtsArray,
    /// The weight mapper for this geometry.
    pub mapper: WeightMapper,
    /// The digitally trained network ("simulation model").
    pub net: ComplexLnn,
    /// The solved metasurface schedule.
    pub schedule: WeightSchedule,
    /// Realized physical channels `H[r, i]` ("prototype model").
    ///
    /// Prefer [`MetaAiSystem::set_channels`] for replacing the matrix: the
    /// system caches a split re/im copy of the channels for the fused
    /// scoring kernel, and `set_channels` keeps that cache coherent.
    pub channels: CMat,
    /// Receiver noise variance — a *fixed* thermal floor, anchored so the
    /// reference geometry sees `config.snr_db`. Redeployments keep the
    /// floor: moving the receiver changes signal power, not noise.
    pub noise_floor: f64,
    /// The stacked cascade behind `channels`, when this deployment is an
    /// L-layer stack (`None` for the paper's single-surface deployment).
    /// For stacks, `array`/`mapper`/`schedule` describe layer 0 only —
    /// the composed truth lives here.
    pub stack: Option<StackDeployment>,
    /// Column-major re/im planes of `channels`, split once at deployment
    /// so per-request engines ([`MetaAiSystem::engine`]) skip the split.
    planes: CPlanes,
}

/// Layer 0 of a stack schedule viewed as a legacy single-surface
/// [`WeightSchedule`] — keeps `system.schedule` populated for code that
/// reports scale/residual without being stack-aware.
fn legacy_schedule(stack: &StackSchedule) -> WeightSchedule {
    let first = &stack.layers[0];
    WeightSchedule {
        codes: first.codes.clone(),
        achieved: first.achieved.clone(),
        scale: first.scale,
        rms_residual: first.rms_residual,
    }
}

/// Staged construction of a [`MetaAiSystem`].
///
/// Collects deployment options and finishes with [`deploy`](Self::deploy)
/// for an already-trained network or
/// [`train_and_deploy`](Self::train_and_deploy) to train first.
///
/// ```no_run
/// # use metaai::{MetaAiSystem, SystemConfig};
/// # let net: metaai_nn::complex_lnn::ComplexLnn = unimplemented!();
/// let system = MetaAiSystem::builder()
///     .config(SystemConfig::paper_default())
///     .num_atoms(256)
///     .deploy(net);
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    config: SystemConfig,
    num_atoms: usize,
    layers: usize,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder {
            config: SystemConfig::paper_default(),
            num_atoms: 256,
            layers: 1,
        }
    }
}

impl SystemBuilder {
    /// Sets the deployment configuration (default: paper defaults).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the meta-atom count (default 256; the Fig 7 sweep varies it).
    /// For stacked deployments this is the *total* budget, split
    /// near-equally across the layers — stacked-vs-single comparisons
    /// stay at equal hardware cost.
    pub fn num_atoms(mut self, num_atoms: usize) -> Self {
        assert!(num_atoms > 0, "an array needs at least one atom");
        self.num_atoms = num_atoms;
        self
    }

    /// Sets the number of cascaded metasurface layers (default 1).
    ///
    /// `layers(1)` is exactly the paper's single-surface deployment —
    /// same RNG streams, same mapper, bitwise-identical system. With
    /// `layers ≥ 2`, [`deploy`](Self::deploy) factorizes the network
    /// across the stack and [`train_and_deploy`](Self::train_and_deploy)
    /// trains product-parameterized layer factors
    /// ([`metaai_sim::train_stack`]) instead.
    pub fn layers(mut self, layers: usize) -> Self {
        assert!(layers >= 1, "a deployment needs at least one layer");
        self.layers = layers;
        self
    }

    /// Deploys an already-trained network: builds the array (with seeded
    /// fabrication phase noise), solves the metasurface schedule, realizes
    /// the physical channels, and anchors the receiver noise floor at the
    /// configured SNR.
    pub fn deploy(self, net: ComplexLnn) -> MetaAiSystem {
        if self.layers > 1 {
            let weights = StackWeights::from_effective(&net.weights, self.layers);
            return self.deploy_stack(weights);
        }
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.deploy_seconds.span());
        if let Some(m) = tele {
            m.deploys.inc();
        }
        let config = self.config;
        let mut array =
            MtsArray::with_atom_count(config.prototype, self.num_atoms, config.mts_center);
        if config.atom_phase_noise > 0.0 {
            let mut rng = SimRng::derive(config.seed, "atom-phase-noise");
            array.inject_phase_noise(config.atom_phase_noise, &mut rng);
        }
        let mapper = WeightMapper::new(&config, &array);
        let schedule = mapper.map(&net.weights, C64::ZERO);
        let channels = realize_channels(&schedule, &mapper.link, &array);
        let noise_floor = signal_power(&channels) / metaai_math::stats::from_db(config.snr_db);
        let planes = CPlanes::from_cmat(&channels);
        MetaAiSystem {
            config,
            array,
            mapper,
            net,
            schedule,
            channels,
            noise_floor,
            stack: None,
            planes,
        }
    }

    /// Deploys pre-trained stack factors as an L-layer cascade: lays the
    /// surfaces out along the Tx → Rx path (injecting per-layer seeded
    /// fabrication noise from `atom-phase-noise-layer-{l}` streams),
    /// solves every layer's 2-bit programme with residual compensation,
    /// and realizes the composed effective channel — the scoring engine
    /// downstream sees a [`CMat`] exactly as in the single-surface case.
    pub fn deploy_stack(self, weights: StackWeights) -> MetaAiSystem {
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.deploy_seconds.span());
        if let Some(m) = tele {
            m.deploys.inc();
        }
        let config = self.config;
        let spec = StackSpec::new(
            config.prototype,
            config.freq_hz,
            config.tx,
            config.rx,
            config.mts_center,
            weights.num_layers(),
            self.num_atoms,
        );
        let mut geometry = metaai_sim::StackGeometry::build(&spec);
        if config.atom_phase_noise > 0.0 {
            for (l, surface) in geometry.surfaces.iter_mut().enumerate() {
                let mut rng = SimRng::derive(config.seed, &format!("atom-phase-noise-layer-{l}"));
                surface.inject_phase_noise(config.atom_phase_noise, &mut rng);
            }
        }
        let solver = StackSolver::new(&geometry, config.kappa);
        let stack_schedule = solver.solve(&weights.factors, C64::ZERO);
        let channels = realize_stack(&geometry, &stack_schedule);
        let noise_floor = signal_power(&channels) / metaai_math::stats::from_db(config.snr_db);
        let planes = CPlanes::from_cmat(&channels);
        let net = weights.effective_net();
        let array = geometry.surfaces[0].clone();
        let mapper = WeightMapper::new(&config, &array);
        let schedule = legacy_schedule(&stack_schedule);
        MetaAiSystem {
            config,
            array,
            mapper,
            net,
            schedule,
            channels,
            noise_floor,
            stack: Some(StackDeployment {
                geometry,
                weights,
                schedule: stack_schedule,
            }),
            planes,
        }
    }

    /// Trains a network on `train` (through the batched, deterministic
    /// [`TrainEngine`]) and deploys it. With [`layers`](Self::layers) ≥ 2
    /// this trains product-parameterized stack factors instead
    /// ([`metaai_sim::train_stack`]) and deploys the cascade.
    pub fn train_and_deploy(self, train: &ComplexDataset, tcfg: &TrainConfig) -> MetaAiSystem {
        if self.layers > 1 {
            let weights = train_stack(train, self.layers, tcfg);
            self.deploy_stack(weights)
        } else {
            let net = TrainEngine::new(tcfg.clone()).train(train);
            self.deploy(net)
        }
    }
}

impl MetaAiSystem {
    /// Starts a [`SystemBuilder`] — the primary way to construct a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Accuracy of the digital network ("simulation" column of Table 1).
    pub fn digital_accuracy(&self, test: &ComplexDataset) -> f64 {
        metaai_nn::train::evaluate(&self.net, test)
    }

    /// Default channel conditions for this deployment: the configured
    /// environment realized over `n_symbols`, AWGN anchored to the MTS
    /// signal power at the configured SNR, perfect coarse sync.
    pub fn default_conditions(&self, n_symbols: usize, rng: &mut SimRng) -> OtaConditions {
        let env = Environment::paper_default(
            self.config.environment,
            self.config.tx,
            self.config.rx,
            self.config.freq_hz,
        );
        let sync_shift = match self.config.sync_error {
            Some(model) => model.sample_residual_symbols(self.config.symbol_rate, rng),
            None => 0,
        };
        OtaConditions {
            env: EnvChannel::from_environment(&env, n_symbols, rng),
            mts_factor: vec![1.0; n_symbols],
            awgn: Awgn {
                variance: self.noise_floor,
            },
            sync_shift,
            cancellation: self.config.cancellation,
        }
    }

    /// Replaces the realized channels, rebuilding the cached SoA planes
    /// the fused scoring kernel reads.
    ///
    /// `channels` is a public field for read access and compatibility, but
    /// assigning it directly leaves the plane cache stale — fault-injection
    /// and ablation harnesses that swap the matrix must come through here.
    pub fn set_channels(&mut self, channels: CMat) {
        self.channels = channels;
        self.planes = CPlanes::from_cmat(&self.channels);
    }

    /// The inference engine over this deployment's realized channels.
    ///
    /// Borrows the deployment-time SoA planes, so constructing an engine
    /// per request costs nothing. Debug builds verify the plane cache is
    /// coherent with [`MetaAiSystem::channels`].
    pub fn engine(&self) -> OtaEngine<'_> {
        OtaEngine::with_planes(&self.channels, &self.planes)
    }

    /// Runs one inference request (scores, prediction, optional trace).
    pub fn run(&self, request: &InferenceRequest<'_>, rng: &mut SimRng) -> InferenceOutcome {
        self.engine().run(request, rng)
    }

    /// Runs a batch of requests in parallel; request `i` draws from the
    /// counter-derived stream `(seed, stream, i)`.
    pub fn run_batch(
        &self,
        requests: &[InferenceRequest<'_>],
        stream: u64,
    ) -> Vec<InferenceOutcome> {
        self.engine().run_batch(requests, self.config.seed, stream)
    }

    /// Scores one input exactly as position `index` of an offline batch
    /// run on stream `stream` — same derived RNG, same default-conditions
    /// draw order — writing the class scores into `out` (reused scratch)
    /// and returning the argmax.
    ///
    /// This is the serving hot path: a live request carrying a sample
    /// index scores bitwise-identically to
    /// `engine().batch_with(inputs, config.seed, stream, |rng| default_conditions(n, rng))`
    /// at that index, independent of how requests were batched or which
    /// worker picked them up.
    pub fn score_indexed(&self, x: &CVec, stream: u64, index: u64, out: &mut Vec<f64>) -> usize {
        let mut rng = SimRng::derive_indexed(self.config.seed, stream, index);
        let cond = self.default_conditions(x.len(), &mut rng);
        self.engine().scores_into(x, &cond, &mut rng, out);
        metaai_math::stats::argmax(out)
    }

    /// Over-the-air accuracy under per-sample conditions built by
    /// `make_cond` (called with a sample-derived RNG). Batched through the
    /// engine; fully deterministic in `label`, independent of the rayon
    /// worker count.
    pub fn ota_accuracy_with<F>(&self, test: &ComplexDataset, label: &str, make_cond: F) -> f64
    where
        F: Fn(&mut SimRng) -> OtaConditions + Sync,
    {
        if test.is_empty() {
            return 0.0;
        }
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.accuracy_seconds.span());
        if let Some(m) = tele {
            m.accuracy_runs.inc();
        }
        let stream = SimRng::stream_id(&format!("ota-{label}"));
        let predictions =
            self.engine()
                .batch_predict_with(&test.inputs, self.config.seed, stream, make_cond);
        let correct = predictions
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / test.len() as f64
    }

    /// Over-the-air accuracy under the deployment's default conditions
    /// ("prototype" column of Table 1).
    pub fn ota_accuracy(&self, test: &ComplexDataset, label: &str) -> f64 {
        let n = test.input_len();
        self.ota_accuracy_with(test, label, |rng| self.default_conditions(n, rng))
    }

    /// Relative weight-realization error of the deployed schedule. For a
    /// stacked deployment this is the *composed* cascade error
    /// ([`StackSchedule::relative_error`]), not any single layer's.
    pub fn realization_error(&self) -> f64 {
        match &self.stack {
            Some(stack) => stack.schedule.relative_error(&stack.weights.factors),
            None => self
                .mapper
                .relative_error(&self.net.weights, &self.schedule),
        }
    }

    /// Number of cascaded metasurface layers (1 for the single-surface
    /// deployment).
    pub fn num_layers(&self) -> usize {
        self.stack.as_ref().map_or(1, |s| s.geometry.num_layers())
    }

    /// Re-realizes the *deployed* programme against `world`'s geometry —
    /// what the receiver would actually see if the endpoints moved while
    /// the schedule stayed frozen. Single-surface deployments rebuild the
    /// one live link; stacks re-link every hop and compose. Health probes
    /// use this to measure drift without being stack-aware.
    pub fn realize_live(&self, world: &SystemConfig) -> CMat {
        match &self.stack {
            Some(stack) => {
                let live = stack.geometry.relinked(world.tx, world.rx, world.freq_hz);
                realize_stack(&live, &stack.schedule)
            }
            None => {
                let link = metaai_mts::channel::MtsLink::new(
                    &self.array,
                    world.tx,
                    world.rx,
                    world.freq_hz,
                );
                realize_channels(&self.schedule, &link, &self.array)
            }
        }
    }
}

/// Re-deploys an existing system at a new geometry (e.g. after the
/// receiver moved): re-solves the schedule against the new link. The
/// receiver's thermal noise floor is *kept* from the original deployment —
/// moving devices changes signal power, not the noise.
pub fn redeploy(system: &MetaAiSystem, config: &SystemConfig) -> MetaAiSystem {
    let mut moved = MetaAiSystem::builder()
        .config(config.clone())
        .deploy(system.net.clone());
    moved.noise_floor = system.noise_floor;
    moved
}

/// [`redeploy`], warm-started for the online-adaptation loop: re-solves
/// the schedule against `config`'s geometry by seeding every per-weight
/// descent with the *current* schedule's codes
/// ([`WeightMapper::remap`]), instead of rebuilding from scratch.
///
/// Differences from a cold [`redeploy`], all deliberate:
///
/// * the **array is cloned**, not rebuilt — the physical surface (its
///   atom count and fabrication phase noise) does not change because the
///   receiver moved, whereas a cold redeploy re-injects noise and resets
///   any custom atom count to the builder default;
/// * the solve is **sequential** on the caller's thread, reusing
///   `scratch` across rounds — no rayon fan-out competing with serving
///   workers, and the result is independent of worker count;
/// * the **noise floor is kept**, like `redeploy`.
///
/// The warm schedule may differ code-for-code from what a cold redeploy
/// would find (coordinate descent from a different initialization can
/// settle in a different quantization-noise-level minimum); it is held to
/// the same realization-error standard, not bitwise equality.
///
/// `h_env_offset` is the Eqn-8 quasi-static environmental component the
/// re-solve compensates (e.g. a sampled
/// [`Interferer::scatter_gain`](metaai_rf::interference::Interferer::scatter_gain));
/// pass [`C64::ZERO`] when the environment is clean.
pub fn redeploy_warm(
    system: &MetaAiSystem,
    config: &SystemConfig,
    h_env_offset: C64,
    scratch: &mut metaai_mts::solver::SolverScratch,
) -> MetaAiSystem {
    let tele = metaai_telemetry::enabled().then(metrics);
    let _span = tele.map(|m| m.deploy_seconds.span());
    if let Some(m) = tele {
        m.deploys.inc();
    }
    if let Some(stack) = &system.stack {
        // Stacked analogue: same physical surfaces, every hop re-linked
        // against the moved endpoints, every layer warm-resolved from its
        // current codes (sequentially, with the caller's scratch).
        let geometry = stack
            .geometry
            .relinked(config.tx, config.rx, config.freq_hz);
        let solver = StackSolver::new(&geometry, config.kappa);
        let stack_schedule = solver.resolve_warm(
            &stack.weights.factors,
            h_env_offset,
            &stack.schedule,
            scratch,
        );
        let channels = realize_stack(&geometry, &stack_schedule);
        let planes = CPlanes::from_cmat(&channels);
        let array = geometry.surfaces[0].clone();
        let link = metaai_mts::channel::MtsLink::new(&array, config.tx, config.rx, config.freq_hz);
        return MetaAiSystem {
            config: config.clone(),
            array,
            mapper: WeightMapper::from_link(link, config.kappa),
            net: system.net.clone(),
            schedule: legacy_schedule(&stack_schedule),
            channels,
            noise_floor: system.noise_floor,
            stack: Some(StackDeployment {
                geometry,
                weights: stack.weights.clone(),
                schedule: stack_schedule,
            }),
            planes,
        };
    }
    let array = system.array.clone();
    let link = metaai_mts::channel::MtsLink::new(&array, config.tx, config.rx, config.freq_hz);
    let mapper = WeightMapper::from_link(link, config.kappa);
    let schedule = mapper.remap(&system.net.weights, h_env_offset, &system.schedule, scratch);
    let channels = realize_channels(&schedule, &mapper.link, &array);
    let planes = CPlanes::from_cmat(&channels);
    MetaAiSystem {
        config: config.clone(),
        array,
        mapper,
        net: system.net.clone(),
        schedule,
        channels,
        noise_floor: system.noise_floor,
        stack: None,
        planes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_nn::train::toy_problem;

    fn quick_system() -> (MetaAiSystem, ComplexDataset) {
        let train = toy_problem(3, 32, 40, 0.35, 50, 150);
        let test = toy_problem(3, 32, 20, 0.35, 50, 250);
        let cfg = SystemConfig::paper_default();
        let tcfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        }
        .with_augmentation(metaai_nn::augment::Augmentation::cdfa_default());
        let sys = MetaAiSystem::builder()
            .config(cfg)
            .train_and_deploy(&train, &tcfg);
        (sys, test)
    }

    #[test]
    fn digital_and_ota_accuracy_are_close() {
        let (sys, test) = quick_system();
        let digital = sys.digital_accuracy(&test);
        let ota = sys.ota_accuracy(&test, "t1");
        assert!(digital > 0.9, "digital accuracy {digital}");
        // The prototype gap in the paper is ≤ 7 points.
        assert!(
            ota > digital - 0.15,
            "OTA {ota} too far below digital {digital}"
        );
    }

    #[test]
    fn realization_error_is_small() {
        let (sys, _) = quick_system();
        let rel = sys.realization_error();
        assert!(rel < 0.05, "realization error {rel}");
    }

    #[test]
    fn ota_is_deterministic_per_label() {
        let (sys, test) = quick_system();
        let a = sys.ota_accuracy(&test, "same");
        let b = sys.ota_accuracy(&test, "same");
        assert_eq!(a, b);
    }

    #[test]
    fn ideal_conditions_match_digital_decisions() {
        let (sys, test) = quick_system();
        let n = test.input_len();
        let ideal = sys.ota_accuracy_with(&test, "ideal", |_| OtaConditions::ideal(n));
        let digital = sys.digital_accuracy(&test);
        // Quantization at M=256 is tiny: ideal OTA ≈ digital.
        assert!(
            (ideal - digital).abs() < 0.08,
            "ideal OTA {ideal} vs digital {digital}"
        );
    }

    #[test]
    fn score_indexed_matches_the_batch_path_bitwise() {
        let (sys, test) = quick_system();
        let n = test.input_len();
        let stream = metaai_math::rng::SimRng::stream_id("serve-test");
        let batched = sys
            .engine()
            .batch_with(&test.inputs, sys.config.seed, stream, |rng| {
                sys.default_conditions(n, rng)
            });
        let mut scratch = Vec::new();
        for (i, x) in test.inputs.iter().enumerate() {
            let predicted = sys.score_indexed(x, stream, i as u64, &mut scratch);
            assert_eq!(predicted, batched[i].predicted, "sample {i}");
            assert_eq!(scratch, batched[i].scores, "sample {i} scores");
        }
    }

    #[test]
    fn redeploy_preserves_the_network() {
        let (sys, test) = quick_system();
        let moved = SystemConfig::paper_default().with_rx_at(5.0, 10.0);
        let sys2 = redeploy(&sys, &moved);
        assert_eq!(sys2.net.weights, sys.net.weights);
        // New geometry → new channels, but still functional.
        let ota = sys2.ota_accuracy(&test, "moved");
        assert!(ota > 0.6, "accuracy after redeploy {ota}");
    }

    #[test]
    fn a_stacked_deployment_serves_like_a_single_surface() {
        let train = toy_problem(3, 32, 40, 0.35, 50, 150);
        let test = toy_problem(3, 32, 20, 0.35, 50, 250);
        let tcfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        }
        .with_augmentation(metaai_nn::augment::Augmentation::cdfa_default());
        let sys = MetaAiSystem::builder()
            .config(SystemConfig::paper_default())
            .num_atoms(256)
            .layers(2)
            .train_and_deploy(&train, &tcfg);
        assert_eq!(sys.num_layers(), 2);
        let stack = sys.stack.as_ref().expect("a 2-layer system has a stack");
        assert_eq!(stack.geometry.total_atoms(), 256);
        assert!(sys.digital_accuracy(&test) > 0.9);
        let rel = sys.realization_error();
        assert!(rel < 0.1, "composed realization error {rel}");
        let ota = sys.ota_accuracy(&test, "stacked");
        assert!(ota > 0.7, "stacked OTA accuracy {ota}");
        // The deployed cascade re-realized at its own geometry IS the
        // deployed channel matrix.
        let live = sys.realize_live(&sys.config);
        assert_eq!(live, sys.channels);
    }

    #[test]
    fn one_layer_is_exactly_the_single_surface_deployment() {
        let train = toy_problem(3, 32, 30, 0.35, 50, 151);
        let tcfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let plain = MetaAiSystem::builder()
            .config(SystemConfig::paper_default())
            .train_and_deploy(&train, &tcfg);
        let one = MetaAiSystem::builder()
            .config(SystemConfig::paper_default())
            .layers(1)
            .train_and_deploy(&train, &tcfg);
        assert!(one.stack.is_none(), "layers(1) short-circuits the stack");
        assert_eq!(one.net.weights, plain.net.weights);
        assert_eq!(one.schedule.codes, plain.schedule.codes);
        assert_eq!(one.channels, plain.channels);
    }

    #[test]
    fn stacked_warm_redeploy_keeps_surfaces_and_quality() {
        let train = toy_problem(3, 32, 40, 0.35, 50, 152);
        let test = toy_problem(3, 32, 20, 0.35, 50, 252);
        let tcfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        }
        .with_augmentation(metaai_nn::augment::Augmentation::cdfa_default());
        let sys = MetaAiSystem::builder()
            .config(SystemConfig::paper_default())
            .layers(2)
            .train_and_deploy(&train, &tcfg);
        let moved = SystemConfig::paper_default().with_rx_at(3.0, 43.0);
        let mut scratch = metaai_mts::solver::SolverScratch::new();
        let warm = redeploy_warm(&sys, &moved, C64::ZERO, &mut scratch);

        let (ws, ss) = (warm.stack.as_ref().unwrap(), sys.stack.as_ref().unwrap());
        for (a, b) in ws.geometry.surfaces.iter().zip(&ss.geometry.surfaces) {
            assert_eq!(a.num_atoms(), b.num_atoms());
            for (x, y) in a.atoms.iter().zip(&b.atoms) {
                assert_eq!(x.phase_error, y.phase_error);
            }
        }
        assert_eq!(warm.noise_floor, sys.noise_floor);
        assert!(
            warm.realization_error() < sys.realization_error() + 0.05,
            "warm stacked redeploy error {}",
            warm.realization_error()
        );
        let ota = warm.ota_accuracy(&test, "stacked-warm");
        assert!(ota > 0.6, "accuracy after stacked warm redeploy {ota}");

        let again = redeploy_warm(&sys, &moved, C64::ZERO, &mut scratch);
        assert_eq!(warm.channels, again.channels);
    }

    #[test]
    fn warm_redeploy_keeps_the_surface_and_matches_cold_quality() {
        let (sys, test) = quick_system();
        let moved = SystemConfig::paper_default().with_rx_at(3.0, 43.0);
        let mut scratch = metaai_mts::solver::SolverScratch::new();
        let warm = redeploy_warm(&sys, &moved, C64::ZERO, &mut scratch);
        let cold = redeploy(&sys, &moved);

        // The physical surface is untouched: same atoms, same fabrication
        // noise — a receiver move cannot re-manufacture the array.
        assert_eq!(warm.array.num_atoms(), sys.array.num_atoms());
        for (a, b) in warm.array.atoms.iter().zip(&sys.array.atoms) {
            assert_eq!(a.phase_error, b.phase_error);
        }
        assert_eq!(warm.net.weights, sys.net.weights);
        assert_eq!(warm.noise_floor, sys.noise_floor);

        // Warm and cold may settle in different quantization-level minima,
        // but realize the weights equally faithfully and serve equally well.
        assert!(
            warm.realization_error() < cold.realization_error() + 0.01,
            "warm {} vs cold {}",
            warm.realization_error(),
            cold.realization_error()
        );
        let ota = warm.ota_accuracy(&test, "warm-moved");
        assert!(ota > 0.6, "accuracy after warm redeploy {ota}");

        // And the warm path is deterministic across scratch reuse.
        let again = redeploy_warm(&sys, &moved, C64::ZERO, &mut scratch);
        assert_eq!(warm.schedule.codes, again.schedule.codes);
        assert_eq!(warm.channels, again.channels);
    }
}
