//! End-to-end energy and latency model — Appendix A.4, Tables 2–3.
//!
//! The paper compares MetaAI against "transmit then compute" baselines
//! where an IoT device ships raw data to an edge server (CPU or GPU) that
//! then runs either a ResNet-18 or the same-architecture software LNN.
//! Every row decomposes into transmission, server computing, and (for
//! MetaAI) metasurface control.
//!
//! Device constants are calibrated to the paper's measured Table 2/3 rows
//! (AMD Ryzen CPU, RTX 4080 GPU, USRP front-ends); MetaAI's own rows are
//! *computed* from the architecture: its transmission time is
//! `R · U / symbol_rate` (one pass per category), its server computation
//! is a single `R`-way argmax, and its control energy comes from the
//! controller model in `metaai-mts`.

use metaai_mts::control::ControlModel;

/// The compute platform running the server-side model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Edge-server CPU (paper: AMD Ryzen).
    Cpu,
    /// Edge-server GPU (paper: NVIDIA RTX 4080).
    Gpu,
    /// MetaAI: computation in the wireless channel.
    MetaAi,
}

/// The server-side model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Deep reference network (ResNet-18 in the paper).
    ResNet18,
    /// Single-layer linear network (same architecture as MetaAI).
    Lnn,
}

/// One end-to-end energy/latency estimate.
#[derive(Clone, Copy, Debug)]
pub struct EnergyReport {
    /// Transmission time, seconds.
    pub transmission_s: f64,
    /// Server computing time, seconds.
    pub server_s: f64,
    /// Total latency, seconds.
    pub total_s: f64,
    /// Transmission energy, joules.
    pub transmission_j: f64,
    /// Server computing energy, joules.
    pub server_j: f64,
    /// Metasurface control energy, joules (MetaAI only).
    pub mts_j: f64,
    /// Total energy, joules.
    pub total_j: f64,
}

/// Workload parameters for one inference.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Raw payload symbols per transmission (one image/sample).
    pub symbols: usize,
    /// Output classes.
    pub classes: usize,
    /// Link symbol rate, symbols/second.
    pub symbol_rate: f64,
    /// Measured server times `(cpu_resnet, cpu_lnn, gpu_resnet, gpu_lnn)`
    /// in seconds, when this workload was profiled (the paper's Tables
    /// 2–3); `None` falls back to per-symbol scaling from the MNIST
    /// profile. Model inference time does not scale linearly with input
    /// size (deep networks have fixed-cost stages), so measured values
    /// are preferred.
    pub measured_server_s: Option<[f64; 4]>,
}

impl Workload {
    /// The paper's MNIST workload (Table 2): a 157-symbol payload at
    /// 1 Msym/s, 10 classes.
    pub fn mnist() -> Workload {
        Workload {
            symbols: 157,
            classes: 10,
            symbol_rate: 1e6,
            measured_server_s: Some([7.71e-3, 1.96e-3, 4.30e-3, 3.99e-3]),
        }
    }

    /// The paper's AFHQ workload (Table 3): a 901-symbol payload, 3
    /// classes.
    pub fn afhq() -> Workload {
        Workload {
            symbols: 901,
            classes: 3,
            symbol_rate: 1e6,
            measured_server_s: Some([16.695e-3, 4.621e-3, 7.147e-3, 5.247e-3]),
        }
    }
}

/// Device constants calibrated against the paper's measurements.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConstants {
    /// IoT transmit power during a burst, watts (0.856 mJ / 0.157 ms).
    pub tx_power_w: f64,
    /// CPU ResNet-18: time per payload symbol, s (scales with input).
    pub cpu_resnet_s_per_sym: f64,
    /// CPU ResNet-18 package power, watts.
    pub cpu_resnet_w: f64,
    /// CPU LNN time per payload symbol, s.
    pub cpu_lnn_s_per_sym: f64,
    /// CPU LNN package power, watts.
    pub cpu_lnn_w: f64,
    /// GPU ResNet-18 time per payload symbol, s.
    pub gpu_resnet_s_per_sym: f64,
    /// GPU ResNet-18 board power, watts.
    pub gpu_resnet_w: f64,
    /// GPU LNN time per payload symbol, s.
    pub gpu_lnn_s_per_sym: f64,
    /// GPU LNN board power, watts.
    pub gpu_lnn_w: f64,
    /// MetaAI's server-side argmax time per class, seconds.
    pub argmax_s_per_class: f64,
    /// MetaAI's server-side power during that argmax, watts.
    pub argmax_w: f64,
}

impl Default for DeviceConstants {
    fn default() -> Self {
        // Calibrated to Table 2 (MNIST, 157 symbols): e.g. CPU ResNet
        // 7.71 ms / 227.37 mJ → 29.5 W and 49.1 µs/symbol.
        DeviceConstants {
            tx_power_w: 0.856e-3 / 0.157e-3,
            cpu_resnet_s_per_sym: 7.71e-3 / 157.0,
            cpu_resnet_w: 227.37e-3 / 7.71e-3,
            cpu_lnn_s_per_sym: 1.96e-3 / 157.0,
            cpu_lnn_w: 62.72e-3 / 1.96e-3,
            gpu_resnet_s_per_sym: 4.30e-3 / 157.0,
            gpu_resnet_w: 182.37e-3 / 4.30e-3,
            gpu_lnn_s_per_sym: 3.99e-3 / 157.0,
            gpu_lnn_w: 124.7e-3 / 3.99e-3,
            argmax_s_per_class: 0.013e-3 / 10.0,
            argmax_w: 0.008e-3 / 0.013e-3,
        }
    }
}

/// Computes the end-to-end report for one system configuration.
pub fn estimate(
    platform: Platform,
    model: Model,
    w: &Workload,
    k: &DeviceConstants,
    mts: &ControlModel,
) -> EnergyReport {
    match platform {
        Platform::MetaAi => {
            // One transmission per category; computation happens during
            // propagation, leaving only an argmax at the server.
            let tx_s = w.classes as f64 * w.symbols as f64 / w.symbol_rate;
            let server_s = w.classes as f64 * k.argmax_s_per_class;
            let tx_j = tx_s * k.tx_power_w;
            let server_j = server_s * k.argmax_w;
            let mts_j = mts.inference_energy_j(w.classes * w.symbols, 2);
            EnergyReport {
                transmission_s: tx_s,
                server_s,
                total_s: tx_s + server_s,
                transmission_j: tx_j,
                server_j,
                mts_j,
                total_j: tx_j + server_j + mts_j,
            }
        }
        Platform::Cpu | Platform::Gpu => {
            let tx_s = w.symbols as f64 / w.symbol_rate;
            let (s_per_sym, power) = match (platform, model) {
                (Platform::Cpu, Model::ResNet18) => (k.cpu_resnet_s_per_sym, k.cpu_resnet_w),
                (Platform::Cpu, Model::Lnn) => (k.cpu_lnn_s_per_sym, k.cpu_lnn_w),
                (Platform::Gpu, Model::ResNet18) => (k.gpu_resnet_s_per_sym, k.gpu_resnet_w),
                (Platform::Gpu, Model::Lnn) => (k.gpu_lnn_s_per_sym, k.gpu_lnn_w),
                (Platform::MetaAi, _) => unreachable!(),
            };
            let server_s = match (w.measured_server_s, platform, model) {
                (Some(m), Platform::Cpu, Model::ResNet18) => m[0],
                (Some(m), Platform::Cpu, Model::Lnn) => m[1],
                (Some(m), Platform::Gpu, Model::ResNet18) => m[2],
                (Some(m), Platform::Gpu, Model::Lnn) => m[3],
                _ => s_per_sym * w.symbols as f64,
            };
            let tx_j = tx_s * k.tx_power_w;
            let server_j = server_s * power;
            EnergyReport {
                transmission_s: tx_s,
                server_s,
                total_s: tx_s + server_s,
                transmission_j: tx_j,
                server_j,
                mts_j: 0.0,
                total_j: tx_j + server_j,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rows(w: &Workload) -> Vec<(Platform, Model, EnergyReport)> {
        let k = DeviceConstants::default();
        let c = ControlModel::default();
        vec![
            (
                Platform::Cpu,
                Model::ResNet18,
                estimate(Platform::Cpu, Model::ResNet18, w, &k, &c),
            ),
            (
                Platform::Cpu,
                Model::Lnn,
                estimate(Platform::Cpu, Model::Lnn, w, &k, &c),
            ),
            (
                Platform::Gpu,
                Model::ResNet18,
                estimate(Platform::Gpu, Model::ResNet18, w, &k, &c),
            ),
            (
                Platform::Gpu,
                Model::Lnn,
                estimate(Platform::Gpu, Model::Lnn, w, &k, &c),
            ),
            (
                Platform::MetaAi,
                Model::Lnn,
                estimate(Platform::MetaAi, Model::Lnn, w, &k, &c),
            ),
        ]
    }

    #[test]
    fn mnist_rows_match_table_2() {
        let rows = all_rows(&Workload::mnist());
        // CPU ResNet: 7.867 ms total, 228.23 mJ.
        let cpu_resnet = &rows[0].2;
        assert!(
            (cpu_resnet.total_s - 7.867e-3).abs() < 0.05e-3,
            "{}",
            cpu_resnet.total_s
        );
        assert!((cpu_resnet.total_j - 228.23e-3).abs() < 1e-3);
        // MetaAI: 1.581 ms total, ≈ 10.9 mJ.
        let metaai = &rows[4].2;
        assert!(
            (metaai.total_s - 1.581e-3).abs() < 0.05e-3,
            "{}",
            metaai.total_s
        );
        assert!(
            (metaai.total_j - 10.92e-3).abs() < 1.0e-3,
            "{}",
            metaai.total_j
        );
    }

    #[test]
    fn metaai_is_most_energy_efficient() {
        for w in [Workload::mnist(), Workload::afhq()] {
            let rows = all_rows(&w);
            let metaai_j = rows[4].2.total_j;
            for (p, m, r) in &rows[..4] {
                assert!(
                    metaai_j < r.total_j,
                    "MetaAI {metaai_j} vs {p:?}/{m:?} {}",
                    r.total_j
                );
            }
        }
    }

    #[test]
    fn metaai_beats_cpu_lnn_latency() {
        // Table 2's headline: MetaAI total latency < sequential CPU LNN.
        let rows = all_rows(&Workload::mnist());
        let metaai = rows[4].2.total_s;
        let cpu_lnn = rows[1].2.total_s;
        assert!(metaai < cpu_lnn, "MetaAI {metaai} vs CPU LNN {cpu_lnn}");
    }

    #[test]
    fn metaai_server_energy_is_orders_of_magnitude_lower() {
        let rows = all_rows(&Workload::mnist());
        let metaai_server = rows[4].2.server_j;
        let cpu_lnn_server = rows[1].2.server_j;
        assert!(metaai_server * 1000.0 < cpu_lnn_server);
    }

    #[test]
    fn afhq_rows_match_table_3_shape() {
        let rows = all_rows(&Workload::afhq());
        // MetaAI: 2.71 ms total (3 classes × 0.901 ms + argmax).
        let metaai = &rows[4].2;
        assert!(
            (metaai.total_s - 2.71e-3).abs() < 0.05e-3,
            "{}",
            metaai.total_s
        );
        // CPU ResNet heavier than MNIST's.
        assert!(rows[0].2.total_s > 15e-3);
    }

    #[test]
    fn baselines_have_no_mts_energy() {
        for (_, _, r) in &all_rows(&Workload::mnist())[..4] {
            assert_eq!(r.mts_j, 0.0);
        }
    }
}
