//! Parallel computation of multiple categories — Sec 3.3, Eqns 9–10.
//!
//! The baseline computes one category per transmission (`R` sequential
//! passes). Two schemes compute all categories at once:
//!
//! * **Antenna-based** ([`AntennaParallel`]): `R` receive antennas at
//!   distinct positions. One shared metasurface configuration per symbol
//!   must present a *different* weight to each antenna; the per-antenna
//!   path-phase diversity makes that possible, and the joint solver of
//!   `metaai-mts` finds the best compromise. Because `M` shared phases
//!   cannot match `R` independent targets exactly, the per-target residual
//!   grows with `R` — the accuracy-vs-parallelism trade-off of Fig 31.
//!
//! * **Subcarrier-based** ([`SubcarrierParallel`]): one OFDM block per
//!   input symbol, all `K` active subcarriers carrying that symbol. The
//!   metasurface switches configurations *within* each block (its 2.56 MHz
//!   switching rate vs the 40 kHz subcarrier spacing); the receiver's FFT
//!   turns the within-block channel sequence into per-subcarrier effective
//!   weights. Synthesizing those weights is a small ridge least-squares
//!   per input symbol, followed by per-slot discrete solves. The energy
//!   spread across slots and the extra noise bandwidth degrade accuracy
//!   as `K` grows, matching the paper's trend.

use crate::config::SystemConfig;
use crate::engine::OtaEngine;
use crate::ota::OtaConditions;
use metaai_math::fft::fft;
use metaai_math::rng::SimRng;
use metaai_math::stats::argmax;
use metaai_math::{CMat, CVec, C64};
use metaai_mts::array::MtsArray;
use metaai_mts::atom::PhaseCode;
use metaai_mts::channel::MtsLink;
use metaai_mts::solver::WeightSolver;
use metaai_nn::complex_lnn::ComplexLnn;
use metaai_phy::ofdm::OfdmConfig;
use metaai_rf::geometry::{deg_to_rad, place_at, Point3};
use metaai_rf::noise::Awgn;
use metaai_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Parallelism-scheme instruments, registered once with the global
/// registry. Joint solves themselves are counted by the solver's own
/// instruments; this layer tracks deployments of the schemes.
struct ParallelMetrics {
    deploys: Counter,
    deploy_seconds: Histogram,
}

fn metrics() -> &'static ParallelMetrics {
    static METRICS: OnceLock<ParallelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        ParallelMetrics {
            deploys: r.counter("metaai.core.parallel.deploys"),
            deploy_seconds: r.latency_histogram("metaai.core.parallel.deploy_seconds"),
        }
    })
}

/// Registers the parallel layer's instruments with the global registry.
pub fn register_metrics() {
    let _ = metrics();
}

/// Places `n` receive antennas on an arc around the nominal receiver
/// direction, `spacing_deg` apart at the nominal distance.
pub fn antenna_positions(config: &SystemConfig, n: usize, spacing_deg: f64) -> Vec<Point3> {
    let d = config.rx.distance(config.mts_center);
    let base = (config.rx.x - config.mts_center.x).atan2(config.rx.y - config.mts_center.y);
    (0..n)
        .map(|l| {
            let offset = (l as f64 - (n as f64 - 1.0) / 2.0) * deg_to_rad(spacing_deg);
            place_at(
                config.mts_center,
                d,
                std::f64::consts::FRAC_PI_2 - (base + offset),
                config.rx.z,
            )
        })
        .collect()
}

/// Antenna-based parallel deployment: one transmission, `R` outputs.
pub struct AntennaParallel {
    /// Per-antenna links.
    pub links: Vec<MtsLink>,
    /// Shared configuration per input symbol (`U × M`).
    pub codes: Vec<Vec<PhaseCode>>,
    /// Realized physical channels: `channels[(l, i)]` at antenna `l`
    /// during symbol `i`.
    pub channels: CMat,
    /// Receiver-side calibration gains: antenna `l`'s accumulation is
    /// multiplied by `rx_gains[l]` before the argmax. The constants are
    /// known at deployment time (they absorb the per-antenna `α_l` and
    /// weight scale), so this is ordinary receiver calibration — the role
    /// Eqn 10's per-antenna training plays in the paper.
    pub rx_gains: Vec<f64>,
    /// RMS per-target residual of the joint solve (normalized units).
    pub rms_residual: f64,
}

impl AntennaParallel {
    /// Deploys `net` (one class per antenna) on `array` with the given
    /// antenna positions.
    pub fn deploy(
        net: &ComplexLnn,
        config: &SystemConfig,
        array: &MtsArray,
        rx_positions: &[Point3],
    ) -> Self {
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.deploy_seconds.span());
        if let Some(m) = tele {
            m.deploys.inc();
        }
        let r = net.num_classes();
        let u = net.input_len();
        assert_eq!(rx_positions.len(), r, "one antenna per class");

        let links: Vec<MtsLink> = rx_positions
            .iter()
            .map(|&rx| MtsLink::new(array, config.tx, rx, config.freq_hz))
            .collect();
        let solver = WeightSolver::joint(links.iter().map(|l| l.path_phasors.clone()).collect(), 2);
        // Per-antenna weight scale: each class row uses its antenna's full
        // reachable range; the receiver undoes the scales digitally.
        let sigmas: Vec<f64> = (0..r)
            .map(|l| {
                let row_max = (0..u)
                    .map(|i| net.weights[(l, i)].abs())
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                config.kappa * solver.reachable_radius(l) / row_max
            })
            .collect();
        let rx_gains: Vec<f64> = (0..r).map(|l| 1.0 / (sigmas[l] * links[l].alpha)).collect();

        // Joint solve per input symbol.
        let results: Vec<(Vec<PhaseCode>, Vec<C64>, f64)> = (0..u)
            .into_par_iter()
            .map(|i| {
                let targets: Vec<C64> = (0..r).map(|l| net.weights[(l, i)] * sigmas[l]).collect();
                let res = solver.solve(&targets);
                (res.codes, res.achieved, res.residual)
            })
            .collect();

        let mut codes = Vec::with_capacity(u);
        let mut channels = CMat::zeros(r, u);
        let mut sq = 0.0;
        for (i, (c, achieved, resid)) in results.into_iter().enumerate() {
            for (l, &s) in achieved.iter().enumerate() {
                channels[(l, i)] = s * links[l].alpha;
            }
            codes.push(c);
            sq += resid * resid;
        }

        AntennaParallel {
            links,
            codes,
            channels,
            rx_gains,
            rms_residual: (sq / u as f64).sqrt(),
        }
    }

    /// Engine conditions for a plain (uncancelled) parallel transmission:
    /// the antennas see only the programmed channels plus receiver noise.
    fn conditions(&self, awgn: Awgn, n_symbols: usize) -> OtaConditions {
        OtaConditions {
            env: metaai_rf::environment::EnvChannel::silent(n_symbols),
            mts_factor: vec![1.0; n_symbols],
            awgn,
            sync_shift: 0,
            cancellation: false,
        }
    }

    /// Applies the per-antenna calibration gains and decides the class.
    fn calibrated_argmax(&self, scores: &[f64]) -> usize {
        let calibrated: Vec<f64> = scores
            .iter()
            .zip(&self.rx_gains)
            .map(|(s, &g)| s * g)
            .collect();
        argmax(&calibrated)
    }

    /// One parallel inference: a single transmission, every antenna
    /// accumulating its own category (with independent receiver noise).
    pub fn predict(&self, x: &CVec, awgn: &Awgn, rng: &mut SimRng) -> usize {
        let cond = self.conditions(*awgn, x.len());
        let scores = OtaEngine::new(&self.channels).scores(x, &cond, rng);
        self.calibrated_argmax(&scores)
    }

    /// Accuracy over a dataset at the given SNR (anchored to the parallel
    /// channels' own signal power). Batched through the engine.
    pub fn accuracy(&self, inputs: &[CVec], labels: &[usize], snr_db: f64, seed: u64) -> f64 {
        if inputs.is_empty() {
            return 0.0;
        }
        let power = crate::ota::signal_power(&self.channels);
        let awgn = Awgn::from_snr_db(power, snr_db);
        let stream = SimRng::stream_id("ant-parallel");
        let outcomes = OtaEngine::new(&self.channels).batch_with(inputs, seed, stream, |_| {
            self.conditions(awgn, self.channels.cols())
        });
        let correct = outcomes
            .iter()
            .zip(labels)
            .filter(|(o, &l)| self.calibrated_argmax(&o.scores) == l)
            .count();
        correct as f64 / inputs.len() as f64
    }
}

/// Subcarrier-based parallel deployment: one OFDM transmission, `K`
/// outputs on `K` subcarriers.
pub struct SubcarrierParallel {
    /// OFDM layout (`active = K`).
    pub ofdm: OfdmConfig,
    /// The single link (one receive antenna).
    pub link: MtsLink,
    /// Realized slot channels: `slots[i][n]` is the physical channel
    /// during sample `n` of block `i`.
    pub slots: Vec<Vec<C64>>,
    /// The global weight scale applied.
    pub sigma: f64,
    /// Per-bin receiver calibration gains (undo per-row scaling, the
    /// global σ, and α).
    pub rx_gains: Vec<f64>,
}

impl SubcarrierParallel {
    /// Deploys `net` over `K = num_classes` subcarriers.
    pub fn deploy(net: &ComplexLnn, config: &SystemConfig, array: &MtsArray) -> Self {
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.deploy_seconds.span());
        if let Some(m) = tele {
            m.deploys.inc();
        }
        let k = net.num_classes();
        let u = net.input_len();
        let ofdm = OfdmConfig::for_parallelism(k);
        let n = ofdm.fft_size;
        let link = MtsLink::new(array, config.tx, config.rx, config.freq_hz);
        let solver = WeightSolver::single(link.path_phasors.clone(), 2);
        let reach = solver.reachable_radius(0);

        // The receiver's bin-k output over one block is
        // Y_k = x_i · Σ_n h_n·a_n·e^{-j2πkn/N},  a_n = (1/N)Σ_{k'∈A} e^{j2πk'n/N}.
        // Synthesize h (per block) by ridge least squares: the
        // minimal-norm slot sequence meeting the K per-bin constraints.
        let a_n: Vec<C64> = (0..n)
            .map(|t| {
                (0..k)
                    .map(|bin| {
                        C64::cis(std::f64::consts::TAU * (bin + 1) as f64 * t as f64 / n as f64)
                    })
                    .sum::<C64>()
                    / n as f64
            })
            .collect();
        // B[k][n] = a_n·e^{-j2πkn/N}; solve h = Bᴴ(BBᴴ+λI)⁻¹t.
        let b = CMat::from_fn(k, n, |row, t| {
            a_n[t] * C64::cis(-std::f64::consts::TAU * (row + 1) as f64 * t as f64 / n as f64)
        });
        let mut gram = b.matmul(&b.hermitian());
        let lambda = 1e-6 * gram.fro_norm() / k as f64;
        for d in 0..k {
            gram[(d, d)] += C64::real(lambda);
        }

        // Per-row scaling so every class uses the same dynamic range; the
        // receiver undoes it per bin (known deployment constants).
        let row_scale: Vec<f64> = (0..k)
            .map(|row| {
                let row_max = (0..u)
                    .map(|i| net.weights[(row, i)].abs())
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                1.0 / row_max
            })
            .collect();

        // First pass: ideal (continuous) slot sequences at σ = 1.
        let ideal: Vec<Vec<C64>> = (0..u)
            .map(|i| {
                let t = CVec::from_fn(k, |row| net.weights[(row, i)] * row_scale[row]);
                let y = gram.solve(&t).expect("gram matrix is positive definite");
                b.hermitian().matvec(&y).into_vec()
            })
            .collect();
        // Crest scaling: anchoring σ on the absolute peak lets one outlier
        // slot crush the whole dynamic range, so anchor on the 99th
        // percentile and clip the rare peaks onto the reachable circle
        // (phase preserved) instead.
        let mut mags: Vec<f64> = ideal
            .iter()
            .flat_map(|h| h.iter().map(|z| z.abs()))
            .collect();
        mags.sort_by(f64::total_cmp);
        let p99 = mags[((mags.len() - 1) as f64 * 0.99) as usize].max(1e-12);
        let sigma = config.kappa * reach / p99;

        // Second pass: quantize each scaled slot value onto the hardware.
        let limit = config.kappa * reach;
        let slots: Vec<Vec<C64>> = ideal
            .par_iter()
            .map(|h| {
                h.iter()
                    .map(|&z| {
                        let mut target = z * sigma;
                        if target.abs() > limit {
                            target = C64::from_polar(limit, target.arg());
                        }
                        let res = solver.solve_one(target);
                        res.achieved[0] * link.alpha
                    })
                    .collect()
            })
            .collect();

        let rx_gains: Vec<f64> = (0..k)
            .map(|row| 1.0 / (row_scale[row] * sigma * link.alpha))
            .collect();

        SubcarrierParallel {
            ofdm,
            link,
            slots,
            sigma,
            rx_gains,
        }
    }

    /// One parallel inference: `U` OFDM blocks, the receiver accumulating
    /// each active bin into its category score. `h_env` is the static
    /// environmental gain added to every sample.
    pub fn predict(&self, x: &CVec, h_env: C64, awgn: &Awgn, rng: &mut SimRng) -> usize {
        let k = self.ofdm.active;
        let n = self.ofdm.fft_size;
        let mut out = vec![C64::ZERO; k];
        for (i, &xi) in x.iter().enumerate() {
            // Time-domain block carrying x_i on all active bins.
            let mut bins = vec![C64::ZERO; n];
            for bin in 0..k {
                bins[bin + 1] = xi;
            }
            metaai_math::fft::ifft(&mut bins);
            // Per-sample channel + noise (circular model: CP absorbed).
            let mut y: Vec<C64> = bins
                .iter()
                .enumerate()
                .map(|(t, &s)| (h_env + self.slots[i][t]) * s + awgn.sample(rng))
                .collect();
            fft(&mut y);
            for bin in 0..k {
                out[bin] += y[bin + 1];
            }
        }
        let scores: Vec<f64> = out
            .iter()
            .zip(&self.rx_gains)
            .map(|(z, &g)| z.abs() * g)
            .collect();
        argmax(&scores)
    }

    /// Accuracy over a dataset at the given SNR.
    pub fn accuracy(&self, inputs: &[CVec], labels: &[usize], snr_db: f64, seed: u64) -> f64 {
        if inputs.is_empty() {
            return 0.0;
        }
        let power = self
            .slots
            .iter()
            .flat_map(|h| h.iter().map(|z| z.norm_sq()))
            .sum::<f64>()
            / (self.slots.len() * self.ofdm.fft_size) as f64;
        let awgn = Awgn::from_snr_db(power, snr_db);
        let stream = SimRng::stream_id("sub-parallel");
        let correct: usize = (0..inputs.len())
            .into_par_iter()
            .filter(|&i| {
                let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
                self.predict(&inputs[i], C64::ZERO, &awgn, &mut rng) == labels[i]
            })
            .count();
        correct as f64 / inputs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_mts::array::Prototype;
    use metaai_nn::train::{toy_problem, train_complex, TrainConfig};

    fn trained(classes: usize, u: usize) -> (ComplexLnn, Vec<CVec>, Vec<usize>) {
        let train = toy_problem(classes, u, 40, 0.3, 60, 160);
        let test = toy_problem(classes, u, 15, 0.3, 60, 260);
        let net = train_complex(
            &train,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::default()
            },
        );
        (net, test.inputs, test.labels)
    }

    #[test]
    fn antenna_positions_form_an_arc() {
        let cfg = SystemConfig::paper_default();
        let pos = antenna_positions(&cfg, 5, 8.0);
        assert_eq!(pos.len(), 5);
        let d0 = cfg.rx.distance(cfg.mts_center);
        for p in &pos {
            assert!((p.distance(cfg.mts_center) - d0).abs() < 1e-6);
        }
        // Middle antenna sits at the nominal receiver.
        assert!(pos[2].distance(cfg.rx) < 1e-6);
    }

    #[test]
    fn antenna_parallel_classifies_above_chance() {
        let (net, inputs, labels) = trained(3, 24);
        let cfg = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, cfg.mts_center);
        let rx = antenna_positions(&cfg, 3, 10.0);
        let sys = AntennaParallel::deploy(&net, &cfg, &array, &rx);
        let acc = sys.accuracy(&inputs, &labels, 25.0, 1);
        assert!(acc > 0.6, "antenna-parallel accuracy {acc}");
    }

    #[test]
    fn antenna_residual_grows_with_classes() {
        let cfg = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, cfg.mts_center);
        let mut residuals = Vec::new();
        for &k in &[2usize, 6] {
            let (net, _, _) = trained(k, 12);
            let rx = antenna_positions(&cfg, k, 10.0);
            let sys = AntennaParallel::deploy(&net, &cfg, &array, &rx);
            residuals.push(sys.rms_residual / (k as f64).sqrt());
        }
        assert!(
            residuals[1] > residuals[0] * 0.8,
            "joint coupling should not vanish: {residuals:?}"
        );
    }

    #[test]
    fn subcarrier_parallel_classifies_above_chance() {
        let (net, inputs, labels) = trained(3, 24);
        let cfg = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, cfg.mts_center);
        let sys = SubcarrierParallel::deploy(&net, &cfg, &array);
        let acc = sys.accuracy(&inputs, &labels, 25.0, 2);
        assert!(acc > 0.6, "subcarrier-parallel accuracy {acc}");
    }

    #[test]
    fn subcarrier_synthesis_hits_targets_in_the_clean_limit() {
        // With no noise and no env, the per-bin accumulation should match
        // the digital network's decision on most samples.
        let (net, inputs, labels) = trained(3, 16);
        let cfg = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, cfg.mts_center);
        let sys = SubcarrierParallel::deploy(&net, &cfg, &array);
        let mut rng = SimRng::seed_from_u64(3);
        let mut agree = 0;
        for x in inputs.iter().take(10) {
            let para = sys.predict(x, C64::ZERO, &Awgn::off(), &mut rng);
            let digital = net.predict(x);
            if para == digital {
                agree += 1;
            }
        }
        assert!(
            agree >= 8,
            "clean parallel should track digital: {agree}/10"
        );
        let _ = labels;
    }

    #[test]
    fn subcarrier_scale_is_positive_and_finite() {
        let (net, _, _) = trained(4, 8);
        let cfg = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, cfg.mts_center);
        let sys = SubcarrierParallel::deploy(&net, &cfg, &array);
        assert!(sys.sigma.is_finite() && sys.sigma > 0.0);
        assert_eq!(sys.slots.len(), 8);
        assert_eq!(sys.slots[0].len(), sys.ofdm.fft_size);
    }
}
