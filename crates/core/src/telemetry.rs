//! Workspace-wide telemetry wiring.
//!
//! Every instrumented stage registers its instruments lazily, on first
//! use; a snapshot taken before a stage ran would silently omit it.
//! [`install`] forces registration across all instrumented crates so a
//! `--metrics-out` snapshot always lists the full instrument set (engine,
//! trainer, solver, mapper, pipeline, fusion, parallel), zero-valued where
//! a stage never ran.
//!
//! The instrument naming scheme is `metaai.<crate>.<stage>.<what>` —
//! see DESIGN.md §10 for the full inventory and the rules for adding one.

pub use metaai_telemetry::{enabled, global, set_enabled, Registry};

/// Registers every instrument in the workspace with the global registry
/// and returns it. Idempotent and cheap after the first call.
pub fn install() -> &'static Registry {
    metaai_mts::solver::register_metrics();
    metaai_nn::engine::register_metrics();
    crate::engine::register_metrics();
    crate::mapper::register_metrics();
    crate::pipeline::register_metrics();
    crate::fusion::register_metrics();
    crate::parallel::register_metrics();
    metaai_telemetry::global()
}

#[cfg(test)]
mod tests {
    use metaai_telemetry::MetricValue;

    #[test]
    fn install_registers_every_stage() {
        let registry = super::install();
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "metaai.core.engine.samples",
            "metaai.core.engine.chips",
            "metaai.core.engine.sample_seconds",
            "metaai.core.mapper.map_seconds",
            "metaai.core.pipeline.deploy_seconds",
            "metaai.core.fusion.inferences",
            "metaai.core.parallel.deploys",
            "metaai.nn.train.epoch_seconds",
            "metaai.nn.train.samples_per_sec",
            "metaai.mts.solver.residual",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
        let residual = snap
            .iter()
            .find(|m| m.name == "metaai.mts.solver.residual")
            .expect("checked above");
        assert!(
            matches!(residual.value, MetricValue::Histogram(_)),
            "the Eqn-4 residual signal must be a distribution"
        );
    }
}
