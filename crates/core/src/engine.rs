//! The batched over-the-air inference engine — the single code path for
//! every OTA prediction in the workspace.
//!
//! [`OtaReceiver::accumulate`](crate::ota::OtaReceiver::accumulate) is the
//! readable per-chip reference model of Eqn 3; this module is the
//! production implementation of the same physics, built for throughput:
//!
//! * **Counter-based RNG streams.** Each sample `i` of a batch draws from
//!   [`SimRng::derive_indexed`]`(seed, stream, i)` — no `format!`-keyed
//!   hashing per sample, and any sample's stream can be reconstructed
//!   independently, which is what makes batching bit-reproducible.
//! * **Index-based cyclic shift.** The residual sync error is applied by
//!   index arithmetic on the input slice instead of materializing a
//!   shifted `CVec` per output row (the legacy path allocated and copied
//!   `R` shifted vectors per sample).
//! * **Shared per-symbol weight chips.** The effective weight
//!   `h = H[r,i] · mts_factor[i]` is computed once per symbol and both
//!   chip polarities derive from it through `chip_signal`; the traced
//!   and untraced paths call the *same* function, so they cannot drift.
//! * **Aggregated receiver noise.** The legacy path drew one complex
//!   Gaussian per chip. Noise enters the accumulation additively, and a
//!   sum of `k` independent `CN(0, σ²)` draws is exactly one
//!   `CN(0, k·σ²)` draw — so the engine draws a single row-level noise
//!   sample of the summed variance. The score distribution is identical;
//!   the per-row cost drops from `2U` Gaussian pairs to one. (Trace mode
//!   still resolves noise per chip, since it reports chip-level values.)
//! * **Batch parallelism.** Batches are processed in chunks under rayon,
//!   each worker reusing a scratch score buffer. Because every sample owns
//!   a counter-derived RNG, results are bitwise independent of the worker
//!   count (`RAYON_NUM_THREADS=1` and the default produce identical
//!   output).
//!
//! The engine is reached through [`MetaAiSystem`](crate::pipeline::MetaAiSystem)
//! (`run`, `run_batch`, `ota_accuracy*`) or directly via [`OtaEngine`] when
//! only a channel matrix is at hand.

use crate::ota::OtaConditions;
use crate::trace::{InferenceTrace, TraceRow};
use metaai_math::rng::SimRng;
use metaai_math::stats::argmax;
use metaai_math::{CMat, CVec, C64};
use metaai_phy::shaping;
use metaai_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Inference-stage instruments, registered once with the global registry.
///
/// The hot path checks the enabled flag once per sample (`tele()` is a
/// relaxed atomic load); everything else only happens when telemetry is
/// on, keeping instrumented-but-disabled throughput at the uninstrumented
/// level.
struct EngineMetrics {
    batches: Counter,
    samples: Counter,
    chips: Counter,
    awgn_draws: Counter,
    traces: Counter,
    sample_seconds: Histogram,
}

fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        EngineMetrics {
            batches: r.counter("metaai.core.engine.batches"),
            samples: r.counter("metaai.core.engine.samples"),
            chips: r.counter("metaai.core.engine.chips"),
            awgn_draws: r.counter("metaai.core.engine.awgn_draws"),
            traces: r.counter("metaai.core.engine.traces"),
            sample_seconds: r.latency_histogram("metaai.core.engine.sample_seconds"),
        }
    })
}

/// The per-sample telemetry gate.
#[inline]
fn tele() -> Option<&'static EngineMetrics> {
    metaai_telemetry::enabled().then(metrics)
}

/// Registers the engine's instruments with the global telemetry registry,
/// so snapshots list them (zero-valued) even before the first inference.
pub fn register_metrics() {
    let _ = metrics();
}

/// Samples per worker chunk in batch processing. Small enough to balance
/// uneven worker speeds, large enough to amortize per-chunk scratch.
const BATCH_CHUNK: usize = 32;

/// One inference to run: the input symbols, the channel conditions during
/// the transmission, and whether to record a chip-level trace.
#[derive(Clone, Debug)]
pub struct InferenceRequest<'a> {
    /// Transmitted symbol vector (one symbol per deployed weight column).
    pub input: &'a CVec,
    /// Channel conditions during this transmission.
    pub conditions: OtaConditions,
    /// Record a per-symbol [`InferenceTrace`] (requires cancellation).
    pub trace: bool,
}

impl<'a> InferenceRequest<'a> {
    /// A plain (untraced) inference request.
    pub fn new(input: &'a CVec, conditions: OtaConditions) -> Self {
        InferenceRequest {
            input,
            conditions,
            trace: false,
        }
    }

    /// Requests a chip-level trace of the transmission.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// The result of one inference.
#[derive(Clone, Debug)]
pub struct InferenceOutcome {
    /// Receiver-side class scores `y_r = |Σ_i H_r(t_i)·x_i|`.
    pub scores: Vec<f64>,
    /// `argmax` of the scores.
    pub predicted: usize,
    /// Chip-level trace, when requested.
    pub trace: Option<InferenceTrace>,
}

/// The signal part of one received chip: the environmental path plus the
/// (polarity-flipped) MTS weight, times the shaped chip.
///
/// Both the untraced scoring kernel and the trace recorder go through this
/// one function — the single definition of the chip-level physics.
#[inline]
fn chip_signal(h: C64, he: C64, xi: C64, slot: usize) -> C64 {
    (he + shaping::weight_chip(h, slot)) * shaping::shape_chip(xi, slot)
}

/// One symbol's signal contribution to the accumulator (noise excluded).
#[inline]
fn symbol_signal(h: C64, he: C64, xi: C64, cancellation: bool) -> C64 {
    if cancellation {
        let mut sum = C64::ZERO;
        for slot in 0..shaping::SLOTS_PER_SYMBOL {
            sum += chip_signal(h, he, xi, slot);
        }
        sum
    } else {
        (he + h) * xi
    }
}

/// Number of per-chip noise draws the reference receiver would make for
/// one output row — the aggregation factor for the engine's single draw.
#[inline]
fn noise_draws_per_row(n_symbols: usize, cancellation: bool) -> usize {
    if cancellation {
        n_symbols * shaping::SLOTS_PER_SYMBOL
    } else {
        n_symbols
    }
}

/// A batched, scratch-reusing OTA inference engine over one deployed
/// channel matrix `H[r, i]`.
pub struct OtaEngine<'a> {
    channels: &'a CMat,
}

impl<'a> OtaEngine<'a> {
    /// Wraps a realized channel matrix.
    pub fn new(channels: &'a CMat) -> Self {
        OtaEngine { channels }
    }

    /// Number of output classes (`R`).
    pub fn num_outputs(&self) -> usize {
        self.channels.rows()
    }

    /// Number of symbols per transmission (`U`).
    pub fn num_symbols(&self) -> usize {
        self.channels.cols()
    }

    fn check_shapes(&self, x: &CVec, cond: &OtaConditions) {
        assert_eq!(self.channels.cols(), x.len(), "one channel per symbol");
        assert_eq!(cond.len(), x.len(), "conditions must cover all symbols");
    }

    /// Computes class scores for one input, appending into `out` (cleared
    /// first) so batch workers can reuse one allocation.
    ///
    /// The telemetry branch happens *around* the scoring kernel, not
    /// inside it: holding a drop-bearing `Span` local across the hot loop
    /// costs a few percent even when disabled (drop flags + unwind
    /// paths), so the disabled path calls the kernel with no telemetry
    /// state at all.
    pub fn scores_into(
        &self,
        x: &CVec,
        cond: &OtaConditions,
        rng: &mut SimRng,
        out: &mut Vec<f64>,
    ) {
        self.check_shapes(x, cond);
        if let Some(m) = tele() {
            let span = m.sample_seconds.span();
            self.score_rows(x, cond, rng, out);
            drop(span);
            let u = x.len();
            let rows = self.channels.rows() as u64;
            m.samples.inc();
            m.chips
                .add(rows * noise_draws_per_row(u, cond.cancellation) as u64);
            if cond.awgn.variance > 0.0 {
                // One aggregated CN(0, kσ²) draw per output row.
                m.awgn_draws.add(rows);
            }
        } else {
            self.score_rows(x, cond, rng, out);
        }
    }

    /// The scoring kernel: per-row accumulation with index-based cyclic
    /// shift and row-aggregated noise.
    #[inline]
    fn score_rows(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng, out: &mut Vec<f64>) {
        let u = x.len();
        let shift = if u == 0 {
            0
        } else {
            cond.sync_shift.rem_euclid(u as isize) as usize
        };
        let xs = x.as_slice();
        let noise_var = cond.awgn.variance * noise_draws_per_row(u, cond.cancellation) as f64;

        out.clear();
        out.reserve(self.channels.rows());
        for r in 0..self.channels.rows() {
            let h_row = self.channels.row(r);
            let mut acc = C64::ZERO;
            for (i, &hri) in h_row.iter().enumerate() {
                // Index-based cyclic shift: xs[(i + shift) mod u] without
                // materializing a shifted copy per row.
                let j = i + shift;
                let j = if j >= u { j - u } else { j };
                let h = hri * cond.mts_factor[i];
                let he = cond.env.gain_at(i);
                acc += symbol_signal(h, he, xs[j], cond.cancellation);
            }
            if noise_var > 0.0 {
                acc += rng.complex_gaussian(noise_var);
            }
            out.push(acc.abs());
        }
    }

    /// Class scores for one input.
    pub fn scores(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.channels.rows());
        self.scores_into(x, cond, rng, &mut out);
        out
    }

    /// Classifies one input.
    pub fn predict(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> usize {
        let mut out = Vec::with_capacity(self.channels.rows());
        self.scores_into(x, cond, rng, &mut out);
        argmax(&out)
    }

    /// One traced inference: every chip and accumulator state recorded.
    ///
    /// The signal arithmetic is `chip_signal` — shared with the scoring
    /// kernel, so traced and untraced scores are bitwise identical in the
    /// noiseless case. Receiver noise, when enabled, is resolved per chip
    /// here (the trace reports chip-level values) while the scoring kernel
    /// draws the distributionally identical row-level aggregate.
    pub fn traced(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> InferenceTrace {
        assert!(cond.cancellation, "the trace records the chip-level scheme");
        self.check_shapes(x, cond);
        let u = x.len();
        let shift = if u == 0 {
            0
        } else {
            cond.sync_shift.rem_euclid(u as isize) as usize
        };
        let xs = x.as_slice();
        let noisy = cond.awgn.variance > 0.0;

        let r_total = self.channels.rows();
        let mut rows = Vec::with_capacity(r_total * u);
        let mut scores = Vec::with_capacity(r_total);
        for r in 0..r_total {
            let h_row = self.channels.row(r);
            let mut acc = C64::ZERO;
            for (i, &hri) in h_row.iter().enumerate() {
                let j = i + shift;
                let j = if j >= u { j - u } else { j };
                let xi = xs[j];
                let h = hri * cond.mts_factor[i];
                let he = cond.env.gain_at(i);
                let mut chips = [C64::ZERO; shaping::SLOTS_PER_SYMBOL];
                let mut sum = C64::ZERO;
                for (slot, chip_out) in chips.iter_mut().enumerate() {
                    let mut y = chip_signal(h, he, xi, slot);
                    if noisy {
                        y += cond.awgn.sample(rng);
                    }
                    *chip_out = y;
                    sum += y;
                }
                acc += sum;
                rows.push(TraceRow {
                    output: r,
                    symbol: i,
                    x: xi,
                    weight: h,
                    env: he,
                    chips,
                    accumulator: acc,
                });
            }
            scores.push(acc.abs());
        }

        let predicted = argmax(&scores);
        if let Some(m) = tele() {
            let chips = (r_total * u * shaping::SLOTS_PER_SYMBOL) as u64;
            m.traces.inc();
            m.samples.inc();
            m.chips.add(chips);
            if noisy {
                // Trace mode resolves noise per chip, not per row.
                m.awgn_draws.add(chips);
            }
        }
        InferenceTrace {
            rows,
            scores,
            predicted,
        }
    }

    /// Runs one request with an explicit RNG.
    pub fn run(&self, request: &InferenceRequest<'_>, rng: &mut SimRng) -> InferenceOutcome {
        if request.trace {
            let trace = self.traced(request.input, &request.conditions, rng);
            InferenceOutcome {
                scores: trace.scores.clone(),
                predicted: trace.predicted,
                trace: Some(trace),
            }
        } else {
            let scores = self.scores(request.input, &request.conditions, rng);
            InferenceOutcome {
                predicted: argmax(&scores),
                scores,
                trace: None,
            }
        }
    }

    /// Runs a batch of requests in parallel. Request `i` draws from the
    /// counter-derived stream `derive_indexed(seed, stream, i)`, so the
    /// result is bitwise independent of the worker count.
    pub fn run_batch(
        &self,
        requests: &[InferenceRequest<'_>],
        seed: u64,
        stream: u64,
    ) -> Vec<InferenceOutcome> {
        if let Some(m) = tele() {
            m.batches.inc();
        }
        self.chunked(requests.len(), |i| {
            let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
            self.run(&requests[i], &mut rng)
        })
    }

    /// Runs a batch of inputs under per-sample conditions built by
    /// `make_cond` (called first on each sample's derived RNG, exactly as
    /// the scalar path would).
    pub fn batch_with<F>(
        &self,
        inputs: &[CVec],
        seed: u64,
        stream: u64,
        make_cond: F,
    ) -> Vec<InferenceOutcome>
    where
        F: Fn(&mut SimRng) -> OtaConditions + Sync,
    {
        if let Some(m) = tele() {
            m.batches.inc();
        }
        self.chunked(inputs.len(), |i| {
            let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
            let cond = make_cond(&mut rng);
            let scores = self.scores(&inputs[i], &cond, &mut rng);
            InferenceOutcome {
                predicted: argmax(&scores),
                scores,
                trace: None,
            }
        })
    }

    /// Batch classification only — the accuracy hot path. Each worker
    /// reuses one score buffer across its whole chunk, so the per-sample
    /// cost is pure arithmetic (no allocation at all).
    pub fn batch_predict_with<F>(
        &self,
        inputs: &[CVec],
        seed: u64,
        stream: u64,
        make_cond: F,
    ) -> Vec<usize>
    where
        F: Fn(&mut SimRng) -> OtaConditions + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if let Some(m) = tele() {
            m.batches.inc();
        }
        let nested: Vec<Vec<usize>> = (0..n.div_ceil(BATCH_CHUNK))
            .into_par_iter()
            .map(|c| {
                let lo = c * BATCH_CHUNK;
                let hi = ((c + 1) * BATCH_CHUNK).min(n);
                let mut scratch = Vec::with_capacity(self.channels.rows());
                (lo..hi)
                    .map(|i| {
                        let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
                        let cond = make_cond(&mut rng);
                        self.scores_into(&inputs[i], &cond, &mut rng, &mut scratch);
                        argmax(&scratch)
                    })
                    .collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    }

    /// Order-preserving chunked parallel map over `0..n`.
    fn chunked<T, F>(&self, n: usize, per_item: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let nested: Vec<Vec<T>> = (0..n.div_ceil(BATCH_CHUNK))
            .into_par_iter()
            .map(|c| {
                let lo = c * BATCH_CHUNK;
                let hi = ((c + 1) * BATCH_CHUNK).min(n);
                (lo..hi).map(&per_item).collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ota::OtaReceiver;
    use metaai_rf::environment::EnvChannel;
    use metaai_rf::noise::Awgn;

    fn setup(rows: usize, u: usize, seed: u64) -> (CMat, Vec<CVec>) {
        let mut rng = SimRng::seed_from_u64(seed);
        let h = CMat::from_fn(rows, u, |_, _| rng.complex_gaussian(1.0));
        let inputs = (0..6)
            .map(|_| CVec::from_fn(u, |_| rng.complex_gaussian(1.0)))
            .collect();
        (h, inputs)
    }

    fn busy_conditions(u: usize, seed: u64, noisy: bool) -> OtaConditions {
        let mut rng = SimRng::seed_from_u64(seed);
        OtaConditions {
            env: EnvChannel::constant(rng.complex_gaussian(0.5), u),
            mts_factor: (0..u).map(|_| 0.5 + rng.uniform()).collect(),
            awgn: Awgn {
                variance: if noisy { 0.02 } else { 0.0 },
            },
            sync_shift: -3,
            cancellation: true,
        }
    }

    #[test]
    fn noiseless_scores_match_the_reference_accumulator_exactly() {
        let (h, inputs) = setup(4, 9, 1);
        let cond = busy_conditions(9, 2, false);
        let engine = OtaEngine::new(&h);
        for x in &inputs {
            let mut rng = SimRng::seed_from_u64(3);
            let fast = engine.scores(x, &cond, &mut rng);
            for (r, s) in fast.iter().enumerate() {
                let mut rr = SimRng::seed_from_u64(3);
                let reference = OtaReceiver::accumulate(h.row(r), x, &cond, &mut rr).abs();
                assert!(
                    (s - reference).abs() < 1e-12,
                    "row {r}: engine {s} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let (h, inputs) = setup(3, 12, 4);
        let cond = busy_conditions(12, 5, true);
        let engine = OtaEngine::new(&h);
        let stream = SimRng::stream_id("test-batch");
        let outcomes = engine.batch_with(&inputs, 7, stream, |_| cond.clone());
        assert_eq!(outcomes.len(), inputs.len());
        for (i, o) in outcomes.iter().enumerate() {
            let mut rng = SimRng::derive_indexed(7, stream, i as u64);
            let scalar = engine.scores(&inputs[i], &cond, &mut rng);
            assert_eq!(o.scores.len(), scalar.len());
            for (a, b) in o.scores.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(o.predicted, argmax(&scalar));
        }
    }

    #[test]
    fn aggregated_noise_has_the_reference_variance() {
        // The engine's one-draw row noise must have the same distribution
        // as the reference's per-chip draws: compare score variances over
        // many trials on a zero channel (scores are then pure noise).
        let h = CMat::zeros(1, 16);
        let x = CVec::from_fn(16, |_| C64::ZERO);
        let mut cond = OtaConditions::ideal(16);
        cond.awgn = Awgn { variance: 0.1 };
        let engine = OtaEngine::new(&h);
        let trials = 4000;
        let mean_sq = |f: &mut dyn FnMut(&mut SimRng) -> f64| -> f64 {
            (0..trials)
                .map(|i| {
                    let mut rng = SimRng::derive_indexed(11, 22, i as u64);
                    let v = f(&mut rng);
                    v * v
                })
                .sum::<f64>()
                / trials as f64
        };
        let engine_power = mean_sq(&mut |rng| engine.scores(&x, &cond, rng)[0]);
        let reference_power =
            mean_sq(&mut |rng| OtaReceiver::accumulate(h.row(0), &x, &cond, rng).abs());
        // Both should be 2U·σ² = 3.2; allow sampling error.
        let expected = 0.1 * 32.0;
        assert!(
            (engine_power - expected).abs() < 0.15 * expected,
            "engine noise power {engine_power} vs {expected}"
        );
        assert!(
            (reference_power - expected).abs() < 0.15 * expected,
            "reference noise power {reference_power} vs {expected}"
        );
    }

    #[test]
    fn trace_mode_matches_untraced_bitwise_without_noise() {
        let (h, inputs) = setup(3, 7, 6);
        let cond = busy_conditions(7, 7, false);
        let engine = OtaEngine::new(&h);
        let mut r1 = SimRng::seed_from_u64(8);
        let mut r2 = SimRng::seed_from_u64(8);
        let trace = engine.traced(&inputs[0], &cond, &mut r1);
        let scores = engine.scores(&inputs[0], &cond, &mut r2);
        for (a, b) in trace.scores.iter().zip(&scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(trace.rows.len(), 3 * 7);
    }

    #[test]
    fn run_honours_the_trace_flag() {
        let (h, inputs) = setup(2, 5, 9);
        let cond = OtaConditions::ideal(5);
        let engine = OtaEngine::new(&h);
        let mut rng = SimRng::seed_from_u64(1);
        let plain = engine.run(&InferenceRequest::new(&inputs[0], cond.clone()), &mut rng);
        assert!(plain.trace.is_none());
        let mut rng = SimRng::seed_from_u64(1);
        let traced = engine.run(
            &InferenceRequest::new(&inputs[0], cond).with_trace(),
            &mut rng,
        );
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.scores, traced.scores);
        assert_eq!(plain.predicted, traced.predicted);
    }

    #[test]
    fn run_batch_handles_mixed_trace_requests() {
        let (h, inputs) = setup(2, 6, 10);
        let cond = OtaConditions::ideal(6);
        let engine = OtaEngine::new(&h);
        let requests: Vec<InferenceRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let req = InferenceRequest::new(x, cond.clone());
                if i % 2 == 0 {
                    req.with_trace()
                } else {
                    req
                }
            })
            .collect();
        let outcomes = engine.run_batch(&requests, 3, 4);
        assert_eq!(outcomes.len(), requests.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.trace.is_some(), i % 2 == 0);
            assert_eq!(o.predicted, argmax(&o.scores));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (h, _) = setup(2, 4, 11);
        let engine = OtaEngine::new(&h);
        assert!(engine
            .batch_with(&[], 1, 2, |_| OtaConditions::ideal(4))
            .is_empty());
        assert!(engine
            .batch_predict_with(&[], 1, 2, |_| OtaConditions::ideal(4))
            .is_empty());
    }

    #[test]
    fn predictions_agree_between_batch_apis() {
        let (h, inputs) = setup(5, 10, 12);
        let engine = OtaEngine::new(&h);
        let make = |rng: &mut SimRng| {
            let mut cond = busy_conditions(10, 13, true);
            cond.sync_shift = rng.below(10) as isize;
            cond
        };
        let full = engine.batch_with(&inputs, 5, 6, make);
        let preds = engine.batch_predict_with(&inputs, 5, 6, make);
        assert_eq!(full.iter().map(|o| o.predicted).collect::<Vec<_>>(), preds);
    }
}
