//! The batched over-the-air inference engine — the single code path for
//! every OTA prediction in the workspace.
//!
//! [`OtaReceiver::accumulate`](crate::ota::OtaReceiver::accumulate) is the
//! readable per-chip reference model of Eqn 3; this module is the
//! production implementation of the same physics, built for throughput:
//!
//! * **Counter-based RNG streams.** Each sample `i` of a batch draws from
//!   [`SimRng::derive_indexed`]`(seed, stream, i)` — no `format!`-keyed
//!   hashing per sample, and any sample's stream can be reconstructed
//!   independently, which is what makes batching bit-reproducible.
//! * **Index-based cyclic shift.** The residual sync error is applied by
//!   index arithmetic on the input slice instead of materializing a
//!   shifted `CVec` per output row (the legacy path allocated and copied
//!   `R` shifted vectors per sample).
//! * **Fused K-class SoA kernel.** Scoring resolves the symbol stream
//!   *once* per sample — the paper's Eqn 9/10 parallelism, where all K
//!   class scores fall out of a single transmission. A chip stage
//!   resolves the cyclic shift and materializes the shifted symbols and
//!   environment gains into split re/im scratch (`EngineScratch`,
//!   thread-local so batch workers reuse one allocation); the
//!   accumulation stage then runs each output row as a pure complex dot
//!   product of those SoA slices against the channel matrix's precomputed
//!   split re/im planes ([`CPlanes`]), several rows per sweep with
//!   register-resident accumulators — plain `f64` multiply-adds, no
//!   intrinsics, on stable rustc. The arithmetic mirrors `symbol_signal`
//!   operation-for-operation, so the fused scores are bitwise identical
//!   to the scalar reference kernel ([`OtaEngine::scores_scalar`], the
//!   pre-fusion loop kept as the executable specification).
//! * **Shared per-symbol chip staging.** The traced path reads the same
//!   staged shift/symbol/gain values as the scoring kernel and derives
//!   both chip polarities through the same `chip_signal`, so traced and
//!   untraced chips cannot drift.
//! * **Aggregated receiver noise.** The legacy path drew one complex
//!   Gaussian per chip. Noise enters the accumulation additively, and a
//!   sum of `k` independent `CN(0, σ²)` draws is exactly one
//!   `CN(0, k·σ²)` draw — so the engine draws a single row-level noise
//!   sample of the summed variance. The score distribution is identical;
//!   the per-row cost drops from `2U` Gaussian pairs to one. (Trace mode
//!   still resolves noise per chip, since it reports chip-level values.)
//! * **Batch parallelism.** Batches are processed in chunks under rayon,
//!   each worker reusing a scratch score buffer. Because every sample owns
//!   a counter-derived RNG, results are bitwise independent of the worker
//!   count (`RAYON_NUM_THREADS=1` and the default produce identical
//!   output).
//!
//! The engine is reached through [`MetaAiSystem`](crate::pipeline::MetaAiSystem)
//! (`run`, `run_batch`, `ota_accuracy*`) or directly via [`OtaEngine`] when
//! only a channel matrix is at hand.

use crate::ota::OtaConditions;
use crate::trace::{InferenceTrace, TraceRow};
use metaai_math::rng::SimRng;
use metaai_math::stats::argmax;
use metaai_math::{cyclic_offset, shifted_index, CMat, CPlanes, CVec, C64};
use metaai_phy::shaping;
use metaai_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::OnceLock;

/// Inference-stage instruments, registered once with the global registry.
///
/// The hot path checks the enabled flag once per sample (`tele()` is a
/// relaxed atomic load); everything else only happens when telemetry is
/// on, keeping instrumented-but-disabled throughput at the uninstrumented
/// level.
struct EngineMetrics {
    batches: Counter,
    samples: Counter,
    chips: Counter,
    awgn_draws: Counter,
    traces: Counter,
    sample_seconds: Histogram,
}

fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        EngineMetrics {
            batches: r.counter("metaai.core.engine.batches"),
            samples: r.counter("metaai.core.engine.samples"),
            chips: r.counter("metaai.core.engine.chips"),
            awgn_draws: r.counter("metaai.core.engine.awgn_draws"),
            traces: r.counter("metaai.core.engine.traces"),
            sample_seconds: r.latency_histogram("metaai.core.engine.sample_seconds"),
        }
    })
}

/// The per-sample telemetry gate.
#[inline]
fn tele() -> Option<&'static EngineMetrics> {
    metaai_telemetry::enabled().then(metrics)
}

/// Registers the engine's instruments with the global telemetry registry,
/// so snapshots list them (zero-valued) even before the first inference.
pub fn register_metrics() {
    let _ = metrics();
}

/// Samples per worker chunk in batch processing. Small enough to balance
/// uneven worker speeds, large enough to amortize per-chunk scratch.
const BATCH_CHUNK: usize = 32;

/// One inference to run: the input symbols, the channel conditions during
/// the transmission, and whether to record a chip-level trace.
#[derive(Clone, Debug)]
pub struct InferenceRequest<'a> {
    /// Transmitted symbol vector (one symbol per deployed weight column).
    pub input: &'a CVec,
    /// Channel conditions during this transmission.
    pub conditions: OtaConditions,
    /// Record a per-symbol [`InferenceTrace`] (requires cancellation).
    pub trace: bool,
}

impl<'a> InferenceRequest<'a> {
    /// A plain (untraced) inference request.
    pub fn new(input: &'a CVec, conditions: OtaConditions) -> Self {
        InferenceRequest {
            input,
            conditions,
            trace: false,
        }
    }

    /// Requests a chip-level trace of the transmission.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// The result of one inference.
#[derive(Clone, Debug)]
pub struct InferenceOutcome {
    /// Receiver-side class scores `y_r = |Σ_i H_r(t_i)·x_i|`.
    pub scores: Vec<f64>,
    /// `argmax` of the scores.
    pub predicted: usize,
    /// Chip-level trace, when requested.
    pub trace: Option<InferenceTrace>,
}

/// The signal part of one received chip: the environmental path plus the
/// (polarity-flipped) MTS weight, times the shaped chip.
///
/// Both the untraced scoring kernel and the trace recorder go through this
/// one function — the single definition of the chip-level physics.
#[inline]
fn chip_signal(h: C64, he: C64, xi: C64, slot: usize) -> C64 {
    (he + shaping::weight_chip(h, slot)) * shaping::shape_chip(xi, slot)
}

/// One symbol's signal contribution to the accumulator (noise excluded).
#[inline]
fn symbol_signal(h: C64, he: C64, xi: C64, cancellation: bool) -> C64 {
    if cancellation {
        let mut sum = C64::ZERO;
        for slot in 0..shaping::SLOTS_PER_SYMBOL {
            sum += chip_signal(h, he, xi, slot);
        }
        sum
    } else {
        (he + h) * xi
    }
}

/// Number of per-chip noise draws the reference receiver would make for
/// one output row — the aggregation factor for the engine's single draw.
#[inline]
fn noise_draws_per_row(n_symbols: usize, cancellation: bool) -> usize {
    if cancellation {
        n_symbols * shaping::SLOTS_PER_SYMBOL
    } else {
        n_symbols
    }
}

/// Reusable split re/im scratch for the fused kernel.
///
/// The chip stage writes per-symbol values here once per sample; the
/// accumulation stage reads them back as scalar broadcasts while streaming
/// the channel planes. One instance lives per thread (see [`SCRATCH`]), so
/// rayon batch workers and serve worker threads each reuse a single
/// allocation across every sample they score without a scratch handle
/// threading through the public API.
#[derive(Default)]
struct EngineScratch {
    /// Shifted input symbols `x[(i + shift) mod u]`, split re/im.
    x_re: Vec<f64>,
    x_im: Vec<f64>,
    /// Environment gains `H_e(i)`, split re/im.
    e_re: Vec<f64>,
    e_im: Vec<f64>,
}

impl EngineScratch {
    /// The chip stage: resolves the cyclic shift once and materializes the
    /// shifted symbols and environment gains for `0..u` — the per-symbol
    /// values every output row shares, computed once per *sample* instead
    /// of once per row. [`OtaEngine::traced`] reads the same staged
    /// values, so traced and untraced chips cannot drift.
    fn stage_chips(&mut self, x: &CVec, cond: &OtaConditions) {
        let u = x.len();
        let offset = cyclic_offset(cond.sync_shift, u);
        let xs = x.as_slice();
        self.x_re.clear();
        self.x_im.clear();
        self.e_re.clear();
        self.e_im.clear();
        self.x_re.reserve(u);
        self.x_im.reserve(u);
        self.e_re.reserve(u);
        self.e_im.reserve(u);
        for i in 0..u {
            let xi = xs[shifted_index(i, offset, u)];
            let he = cond.env.gain_at(i);
            self.x_re.push(xi.re);
            self.x_im.push(xi.im);
            self.e_re.push(he.re);
            self.e_im.push(he.im);
        }
    }
}

/// Widest accumulation sweep in the block cascade (8/4/2/1). Each row's
/// dot product is a serial chain of two dependent `f64` adds; running a
/// block of independent chains side by side fills SIMD lanes and hides
/// that latency without reassociating any single row's sum (each row
/// keeps its own strictly serial symbol order, so blocking is
/// bitwise-invisible). The cascade keeps small class counts lane-packed
/// too: K=5 sweeps as 4+1 instead of five scalar passes.
const ROW_BLOCK: usize = 8;

/// Minimum output rows for the fused path to win. Measured break-even
/// (U=900, cancellation on): at K=3 the chip stage still costs more than
/// the `K×U` re-derivations it removes and split-form sweeps can't fill
/// their lanes (fused ≈0.88× scalar); from K=4 the fused kernel wins and
/// keeps growing (≈1.25× at K=4, ≈1.8× at K=10, ≈2.2× at K=16). Below
/// the threshold the engine scores through the bitwise-identical scalar
/// path instead.
const FUSED_MIN_ROWS: usize = 4;

/// The accumulation stage for one block of `N` output rows: `N`
/// simultaneous complex dot products of the staged symbol stream against
/// the channel planes, accumulators held in registers.
///
/// The column-major planes put the block's channel entries `H[r..r+N, i]`
/// in one contiguous run per component, so the `k` loop (a compile-time
/// constant trip count) maps onto SIMD lanes with plain vector loads —
/// the per-symbol scalars broadcast across the block. The arithmetic per
/// row mirrors `symbol_signal` operation-for-operation in split re/im
/// form — see [`OtaEngine::score_rows`] for the bitwise argument.
#[inline(always)]
fn sweep_rows<const N: usize>(
    planes: &CPlanes,
    first_row: usize,
    s: &EngineScratch,
    mf: &[f64],
    cancellation: bool,
) -> [(f64, f64); N] {
    let u = mf.len();
    let x_re = &s.x_re[..u];
    let x_im = &s.x_im[..u];
    let e_re = &s.e_re[..u];
    let e_im = &s.e_im[..u];
    let mut acc_re = [0.0f64; N];
    let mut acc_im = [0.0f64; N];
    if cancellation {
        // `symbol_signal`'s two chips, expanded in split form:
        // (He + W)·x on slot 0, (He − W)·(−x) on slot 1, summed before
        // joining the accumulator.
        for i in 0..u {
            let c_re = &planes.col_re(i)[first_row..first_row + N];
            let c_im = &planes.col_im(i)[first_row..first_row + N];
            let (xr, xi) = (x_re[i], x_im[i]);
            let (er, ei) = (e_re[i], e_im[i]);
            let m = mf[i];
            let (nxr, nxi) = (-xr, -xi);
            for k in 0..N {
                let hr = c_re[k] * m;
                let hi = c_im[k] * m;
                let (ar, ai) = (er + hr, ei + hi);
                let c0r = ar * xr - ai * xi;
                let c0i = ar * xi + ai * xr;
                let (br, bi) = (er - hr, ei - hi);
                let c1r = br * nxr - bi * nxi;
                let c1i = br * nxi + bi * nxr;
                acc_re[k] += c0r + c1r;
                acc_im[k] += c0i + c1i;
            }
        }
    } else {
        // `(He + H)·x`, split form of the uncancelled symbol.
        for i in 0..u {
            let c_re = &planes.col_re(i)[first_row..first_row + N];
            let c_im = &planes.col_im(i)[first_row..first_row + N];
            let (xr, xi) = (x_re[i], x_im[i]);
            let (er, ei) = (e_re[i], e_im[i]);
            let m = mf[i];
            for k in 0..N {
                let hr = c_re[k] * m;
                let hi = c_im[k] * m;
                let (ar, ai) = (er + hr, ei + hi);
                acc_re[k] += ar * xr - ai * xi;
                acc_im[k] += ar * xi + ai * xr;
            }
        }
    }
    std::array::from_fn(|k| (acc_re[k], acc_im[k]))
}

/// AVX2 instantiations of [`sweep_rows`] for every block width in the
/// cascade, plus the runtime dispatch that picks them.
///
/// `#[target_feature(enable = "avx2")]` recompiles the *same* safe Rust
/// body with 256-bit vectors available; autovectorization widens the
/// block's lanes from 2 (baseline SSE2) to 4. No intrinsics are involved,
/// and FMA stays off deliberately: rustc never contracts `mul` + `add`
/// on its own, so every lane computes the identical `f64` sequence on
/// every path — ISA dispatch is bitwise-invisible.
#[cfg(target_arch = "x86_64")]
mod sweep_x86 {
    use super::{sweep_rows, CPlanes, EngineScratch};

    macro_rules! dispatch {
        ($name:ident, $avx2:ident, $n:expr) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $avx2(
                planes: &CPlanes,
                first_row: usize,
                s: &EngineScratch,
                mf: &[f64],
                cancellation: bool,
            ) -> [(f64, f64); $n] {
                sweep_rows::<$n>(planes, first_row, s, mf, cancellation)
            }

            #[inline]
            pub fn $name(
                planes: &CPlanes,
                first_row: usize,
                s: &EngineScratch,
                mf: &[f64],
                cancellation: bool,
            ) -> [(f64, f64); $n] {
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: guarded by the runtime feature check above.
                    unsafe { $avx2(planes, first_row, s, mf, cancellation) }
                } else {
                    sweep_rows::<$n>(planes, first_row, s, mf, cancellation)
                }
            }
        };
    }

    dispatch!(by8, by8_avx2, 8);
    dispatch!(by4, by4_avx2, 4);
    dispatch!(by2, by2_avx2, 2);
    dispatch!(by1, by1_avx2, 1);
}

/// Portable fallback dispatch: the plain autovectorized sweeps.
#[cfg(not(target_arch = "x86_64"))]
mod sweep_portable {
    use super::{sweep_rows, CPlanes, EngineScratch};

    macro_rules! dispatch {
        ($name:ident, $n:expr) => {
            #[inline]
            pub fn $name(
                planes: &CPlanes,
                first_row: usize,
                s: &EngineScratch,
                mf: &[f64],
                cancellation: bool,
            ) -> [(f64, f64); $n] {
                sweep_rows::<$n>(planes, first_row, s, mf, cancellation)
            }
        };
    }

    dispatch!(by8, 8);
    dispatch!(by4, 4);
    dispatch!(by2, 2);
    dispatch!(by1, 1);
}

#[cfg(not(target_arch = "x86_64"))]
use sweep_portable as sweep;
#[cfg(target_arch = "x86_64")]
use sweep_x86 as sweep;

thread_local! {
    /// Per-thread [`EngineScratch`]; the kernel never re-enters itself, so
    /// the `RefCell` borrow is always uncontended.
    static SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

/// A batched, scratch-reusing OTA inference engine over one deployed
/// channel matrix `H[r, i]`.
///
/// Construction splits the matrix into column-major re/im planes
/// ([`CPlanes`]) for the fused kernel. Callers that keep one matrix
/// deployed across many requests (the serving path) should split the
/// planes once and lend them via [`OtaEngine::with_planes`], making
/// per-request engine construction free.
pub struct OtaEngine<'a> {
    channels: &'a CMat,
    planes: Cow<'a, CPlanes>,
}

impl<'a> OtaEngine<'a> {
    /// Wraps a realized channel matrix, splitting it into SoA planes.
    pub fn new(channels: &'a CMat) -> Self {
        OtaEngine {
            channels,
            planes: Cow::Owned(CPlanes::from_cmat(channels)),
        }
    }

    /// Wraps a channel matrix whose SoA planes were split up front.
    ///
    /// The caller owns coherence: `planes` must be a faithful copy of
    /// `channels` ([`CPlanes::matches`], asserted in debug builds; shape
    /// agreement is always asserted).
    pub fn with_planes(channels: &'a CMat, planes: &'a CPlanes) -> Self {
        assert_eq!(planes.rows(), channels.rows(), "planes/matrix row count");
        assert_eq!(planes.cols(), channels.cols(), "planes/matrix col count");
        debug_assert!(
            planes.matches(channels),
            "SoA planes are stale: rebuild them whenever the channel matrix changes"
        );
        OtaEngine {
            channels,
            planes: Cow::Borrowed(planes),
        }
    }

    /// Number of output classes (`R`).
    pub fn num_outputs(&self) -> usize {
        self.channels.rows()
    }

    /// Number of symbols per transmission (`U`).
    pub fn num_symbols(&self) -> usize {
        self.channels.cols()
    }

    fn check_shapes(&self, x: &CVec, cond: &OtaConditions) {
        assert_eq!(self.channels.cols(), x.len(), "one channel per symbol");
        assert_eq!(cond.len(), x.len(), "conditions must cover all symbols");
    }

    /// Computes class scores for one input, appending into `out` (cleared
    /// first) so batch workers can reuse one allocation.
    ///
    /// The telemetry branch happens *around* the scoring kernel, not
    /// inside it: holding a drop-bearing `Span` local across the hot loop
    /// costs a few percent even when disabled (drop flags + unwind
    /// paths), so the disabled path calls the kernel with no telemetry
    /// state at all.
    pub fn scores_into(
        &self,
        x: &CVec,
        cond: &OtaConditions,
        rng: &mut SimRng,
        out: &mut Vec<f64>,
    ) {
        self.check_shapes(x, cond);
        if let Some(m) = tele() {
            let span = m.sample_seconds.span();
            self.score_rows(x, cond, rng, out);
            drop(span);
            let u = x.len();
            let rows = self.channels.rows() as u64;
            m.samples.inc();
            m.chips
                .add(rows * noise_draws_per_row(u, cond.cancellation) as u64);
            if cond.awgn.variance > 0.0 {
                // One aggregated CN(0, kσ²) draw per output row.
                m.awgn_draws.add(rows);
            }
        } else {
            self.score_rows(x, cond, rng, out);
        }
    }

    /// The fused scoring kernel: the chip stage materializes the shifted,
    /// conditioned symbol stream once per sample (`U` cheap ops instead of
    /// `K×U` chip re-derivations — the paper's Eqn 9/10 parallelism, where
    /// all K class scores fall out of a single transmission), then the
    /// accumulation stage runs each output row as a pure complex dot
    /// product over the staged SoA slices against the row's precomputed
    /// re/im planes, [`ROW_BLOCK`] rows per sweep with accumulators in
    /// registers.
    ///
    /// Bitwise equivalence with [`OtaEngine::scores_scalar`] rests on two
    /// invariants:
    ///
    /// * Each row's accumulator sees additions in the same symbol order,
    ///   with operand arithmetic mirroring `symbol_signal`
    ///   operation-for-operation — no reassociation across symbols and no
    ///   factoring the two cancellation chips into `2·W·x` — so every
    ///   intermediate `f64` is identical. Row blocking only interleaves
    ///   *independent* rows' chains; within a row nothing is reordered.
    ///   (The only non-mirrored detail: `symbol_signal` folds its chips
    ///   through an extra `C64::ZERO + …`, which can flip a zero's sign
    ///   but never the accumulator's value, since a running sum seeded at
    ///   `+0.0` cannot reach `-0.0`.)
    /// * Accumulation consumes no randomness, and the single aggregate
    ///   noise draw per row happens in ascending row order — exactly the
    ///   RNG sequence the scalar kernel consumes (the sweeps between draws
    ///   touch no RNG state).
    ///
    /// The sweeps are plain indexed `f64` arithmetic over contiguous plane
    /// rows and staged slices — no intrinsics; stable rustc keeps the
    /// block's accumulators in registers and schedules the independent
    /// row chains in parallel.
    #[inline]
    fn score_rows(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng, out: &mut Vec<f64>) {
        let u = x.len();
        let rows = self.channels.rows();
        if rows < FUSED_MIN_ROWS {
            // Below the break-even class count the chip stage cannot
            // amortize, and the scalar path's interleaved complex ops
            // already pair re/im into SIMD lanes — it is simply faster.
            // The two paths are bitwise identical (proptest-pinned), so
            // this dispatch is invisible in every output and RNG stream.
            self.score_rows_scalar(x, cond, rng, out);
            return;
        }
        let noise_var = cond.awgn.variance * noise_draws_per_row(u, cond.cancellation) as f64;
        let planes = self.planes.as_ref();
        let mf = &cond.mts_factor[..u];

        SCRATCH.with(|cell| {
            let mut borrow = cell.borrow_mut();
            borrow.stage_chips(x, cond);
            let s = &*borrow;

            out.clear();
            out.reserve(rows);
            let finalize = |acc: (f64, f64), rng: &mut SimRng, out: &mut Vec<f64>| {
                let mut z = C64::new(acc.0, acc.1);
                if noise_var > 0.0 {
                    z += rng.complex_gaussian(noise_var);
                }
                out.push(z.abs());
            };

            let mut r = 0;
            while r + ROW_BLOCK <= rows {
                for acc in sweep::by8(planes, r, s, mf, cond.cancellation) {
                    finalize(acc, rng, out);
                }
                r += ROW_BLOCK;
            }
            if r + 4 <= rows {
                for acc in sweep::by4(planes, r, s, mf, cond.cancellation) {
                    finalize(acc, rng, out);
                }
                r += 4;
            }
            if r + 2 <= rows {
                for acc in sweep::by2(planes, r, s, mf, cond.cancellation) {
                    finalize(acc, rng, out);
                }
                r += 2;
            }
            if r < rows {
                let [acc] = sweep::by1(planes, r, s, mf, cond.cancellation);
                finalize(acc, rng, out);
            }
        });
    }

    /// The scalar reference kernel: the pre-fusion per-row loop, kept as
    /// the executable specification the fused kernel is proptested against
    /// (and as the `legacy` arm of the `engine_throughput` bench). It is
    /// also the production path below `FUSED_MIN_ROWS` output rows,
    /// where the fused kernel's chip stage cannot amortize.
    ///
    /// Performs `K×U` chip re-derivations where the fused kernel does `U`;
    /// output and RNG consumption are bitwise identical to
    /// [`OtaEngine::scores`].
    pub fn scores_scalar(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> Vec<f64> {
        self.check_shapes(x, cond);
        let mut out = Vec::with_capacity(self.channels.rows());
        self.score_rows_scalar(x, cond, rng, &mut out);
        out
    }

    fn score_rows_scalar(
        &self,
        x: &CVec,
        cond: &OtaConditions,
        rng: &mut SimRng,
        out: &mut Vec<f64>,
    ) {
        let u = x.len();
        let offset = cyclic_offset(cond.sync_shift, u);
        let xs = x.as_slice();
        let noise_var = cond.awgn.variance * noise_draws_per_row(u, cond.cancellation) as f64;

        out.clear();
        out.reserve(self.channels.rows());
        for r in 0..self.channels.rows() {
            let h_row = self.channels.row(r);
            let mut acc = C64::ZERO;
            for (i, &hri) in h_row.iter().enumerate() {
                // Index-based cyclic shift: xs[(i + shift) mod u] without
                // materializing a shifted copy per row.
                let h = hri * cond.mts_factor[i];
                let he = cond.env.gain_at(i);
                acc += symbol_signal(h, he, xs[shifted_index(i, offset, u)], cond.cancellation);
            }
            if noise_var > 0.0 {
                acc += rng.complex_gaussian(noise_var);
            }
            out.push(acc.abs());
        }
    }

    /// Class scores for one input.
    pub fn scores(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.channels.rows());
        self.scores_into(x, cond, rng, &mut out);
        out
    }

    /// Classifies one input.
    pub fn predict(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> usize {
        let mut out = Vec::with_capacity(self.channels.rows());
        self.scores_into(x, cond, rng, &mut out);
        argmax(&out)
    }

    /// One traced inference: every chip and accumulator state recorded.
    ///
    /// The per-symbol values come from the same chip stage
    /// (`EngineScratch::stage_chips`) the scoring kernel reads, and the
    /// signal arithmetic is the shared `chip_signal` — so traced and
    /// untraced scores are bitwise identical in the noiseless case.
    /// Receiver noise, when enabled, is resolved per chip here (the trace
    /// reports chip-level values) while the scoring kernel draws the
    /// distributionally identical row-level aggregate.
    pub fn traced(&self, x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> InferenceTrace {
        assert!(cond.cancellation, "the trace records the chip-level scheme");
        self.check_shapes(x, cond);
        let u = x.len();
        let noisy = cond.awgn.variance > 0.0;

        let r_total = self.channels.rows();
        let mut rows = Vec::with_capacity(r_total * u);
        let mut scores = Vec::with_capacity(r_total);
        SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.stage_chips(x, cond);
            for r in 0..r_total {
                let h_row = self.channels.row(r);
                let mut acc = C64::ZERO;
                for (i, &hri) in h_row.iter().enumerate() {
                    let xi = C64::new(s.x_re[i], s.x_im[i]);
                    let he = C64::new(s.e_re[i], s.e_im[i]);
                    let h = hri * cond.mts_factor[i];
                    let mut chips = [C64::ZERO; shaping::SLOTS_PER_SYMBOL];
                    let mut sum = C64::ZERO;
                    for (slot, chip_out) in chips.iter_mut().enumerate() {
                        let mut y = chip_signal(h, he, xi, slot);
                        if noisy {
                            y += cond.awgn.sample(rng);
                        }
                        *chip_out = y;
                        sum += y;
                    }
                    acc += sum;
                    rows.push(TraceRow {
                        output: r,
                        symbol: i,
                        x: xi,
                        weight: h,
                        env: he,
                        chips,
                        accumulator: acc,
                    });
                }
                scores.push(acc.abs());
            }
        });

        let predicted = argmax(&scores);
        if let Some(m) = tele() {
            let chips = (r_total * u * shaping::SLOTS_PER_SYMBOL) as u64;
            m.traces.inc();
            m.samples.inc();
            m.chips.add(chips);
            if noisy {
                // Trace mode resolves noise per chip, not per row.
                m.awgn_draws.add(chips);
            }
        }
        InferenceTrace {
            rows,
            scores,
            predicted,
        }
    }

    /// Runs one request with an explicit RNG.
    pub fn run(&self, request: &InferenceRequest<'_>, rng: &mut SimRng) -> InferenceOutcome {
        if request.trace {
            let trace = self.traced(request.input, &request.conditions, rng);
            InferenceOutcome {
                scores: trace.scores.clone(),
                predicted: trace.predicted,
                trace: Some(trace),
            }
        } else {
            let scores = self.scores(request.input, &request.conditions, rng);
            InferenceOutcome {
                predicted: argmax(&scores),
                scores,
                trace: None,
            }
        }
    }

    /// Runs a batch of requests in parallel. Request `i` draws from the
    /// counter-derived stream `derive_indexed(seed, stream, i)`, so the
    /// result is bitwise independent of the worker count.
    pub fn run_batch(
        &self,
        requests: &[InferenceRequest<'_>],
        seed: u64,
        stream: u64,
    ) -> Vec<InferenceOutcome> {
        if let Some(m) = tele() {
            m.batches.inc();
        }
        self.chunked(requests.len(), |i| {
            let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
            self.run(&requests[i], &mut rng)
        })
    }

    /// Runs a batch of inputs under per-sample conditions built by
    /// `make_cond` (called first on each sample's derived RNG, exactly as
    /// the scalar path would).
    pub fn batch_with<F>(
        &self,
        inputs: &[CVec],
        seed: u64,
        stream: u64,
        make_cond: F,
    ) -> Vec<InferenceOutcome>
    where
        F: Fn(&mut SimRng) -> OtaConditions + Sync,
    {
        if let Some(m) = tele() {
            m.batches.inc();
        }
        self.chunked(inputs.len(), |i| {
            let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
            let cond = make_cond(&mut rng);
            let scores = self.scores(&inputs[i], &cond, &mut rng);
            InferenceOutcome {
                predicted: argmax(&scores),
                scores,
                trace: None,
            }
        })
    }

    /// Batch classification only — the accuracy hot path. Each worker
    /// reuses one score buffer across its whole chunk, so the per-sample
    /// cost is pure arithmetic (no allocation at all).
    pub fn batch_predict_with<F>(
        &self,
        inputs: &[CVec],
        seed: u64,
        stream: u64,
        make_cond: F,
    ) -> Vec<usize>
    where
        F: Fn(&mut SimRng) -> OtaConditions + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if let Some(m) = tele() {
            m.batches.inc();
        }
        let nested: Vec<Vec<usize>> = (0..n.div_ceil(BATCH_CHUNK))
            .into_par_iter()
            .map(|c| {
                let lo = c * BATCH_CHUNK;
                let hi = ((c + 1) * BATCH_CHUNK).min(n);
                let mut scratch = Vec::with_capacity(self.channels.rows());
                (lo..hi)
                    .map(|i| {
                        let mut rng = SimRng::derive_indexed(seed, stream, i as u64);
                        let cond = make_cond(&mut rng);
                        self.scores_into(&inputs[i], &cond, &mut rng, &mut scratch);
                        argmax(&scratch)
                    })
                    .collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    }

    /// Order-preserving chunked parallel map over `0..n`.
    fn chunked<T, F>(&self, n: usize, per_item: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let nested: Vec<Vec<T>> = (0..n.div_ceil(BATCH_CHUNK))
            .into_par_iter()
            .map(|c| {
                let lo = c * BATCH_CHUNK;
                let hi = ((c + 1) * BATCH_CHUNK).min(n);
                (lo..hi).map(&per_item).collect()
            })
            .collect();
        nested.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ota::OtaReceiver;
    use metaai_rf::environment::EnvChannel;
    use metaai_rf::noise::Awgn;

    fn setup(rows: usize, u: usize, seed: u64) -> (CMat, Vec<CVec>) {
        let mut rng = SimRng::seed_from_u64(seed);
        let h = CMat::from_fn(rows, u, |_, _| rng.complex_gaussian(1.0));
        let inputs = (0..6)
            .map(|_| CVec::from_fn(u, |_| rng.complex_gaussian(1.0)))
            .collect();
        (h, inputs)
    }

    fn busy_conditions(u: usize, seed: u64, noisy: bool) -> OtaConditions {
        let mut rng = SimRng::seed_from_u64(seed);
        OtaConditions {
            env: EnvChannel::constant(rng.complex_gaussian(0.5), u),
            mts_factor: (0..u).map(|_| 0.5 + rng.uniform()).collect(),
            awgn: Awgn {
                variance: if noisy { 0.02 } else { 0.0 },
            },
            sync_shift: -3,
            cancellation: true,
        }
    }

    #[test]
    fn noiseless_scores_match_the_reference_accumulator_exactly() {
        let (h, inputs) = setup(4, 9, 1);
        let cond = busy_conditions(9, 2, false);
        let engine = OtaEngine::new(&h);
        for x in &inputs {
            let mut rng = SimRng::seed_from_u64(3);
            let fast = engine.scores(x, &cond, &mut rng);
            for (r, s) in fast.iter().enumerate() {
                let mut rr = SimRng::seed_from_u64(3);
                let reference = OtaReceiver::accumulate(h.row(r), x, &cond, &mut rr).abs();
                assert!(
                    (s - reference).abs() < 1e-12,
                    "row {r}: engine {s} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let (h, inputs) = setup(3, 12, 4);
        let cond = busy_conditions(12, 5, true);
        let engine = OtaEngine::new(&h);
        let stream = SimRng::stream_id("test-batch");
        let outcomes = engine.batch_with(&inputs, 7, stream, |_| cond.clone());
        assert_eq!(outcomes.len(), inputs.len());
        for (i, o) in outcomes.iter().enumerate() {
            let mut rng = SimRng::derive_indexed(7, stream, i as u64);
            let scalar = engine.scores(&inputs[i], &cond, &mut rng);
            assert_eq!(o.scores.len(), scalar.len());
            for (a, b) in o.scores.iter().zip(&scalar) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(o.predicted, argmax(&scalar));
        }
    }

    #[test]
    fn aggregated_noise_has_the_reference_variance() {
        // The engine's one-draw row noise must have the same distribution
        // as the reference's per-chip draws: compare score variances over
        // many trials on a zero channel (scores are then pure noise).
        let h = CMat::zeros(1, 16);
        let x = CVec::from_fn(16, |_| C64::ZERO);
        let mut cond = OtaConditions::ideal(16);
        cond.awgn = Awgn { variance: 0.1 };
        let engine = OtaEngine::new(&h);
        let trials = 4000;
        let mean_sq = |f: &mut dyn FnMut(&mut SimRng) -> f64| -> f64 {
            (0..trials)
                .map(|i| {
                    let mut rng = SimRng::derive_indexed(11, 22, i as u64);
                    let v = f(&mut rng);
                    v * v
                })
                .sum::<f64>()
                / trials as f64
        };
        let engine_power = mean_sq(&mut |rng| engine.scores(&x, &cond, rng)[0]);
        let reference_power =
            mean_sq(&mut |rng| OtaReceiver::accumulate(h.row(0), &x, &cond, rng).abs());
        // Both should be 2U·σ² = 3.2; allow sampling error.
        let expected = 0.1 * 32.0;
        assert!(
            (engine_power - expected).abs() < 0.15 * expected,
            "engine noise power {engine_power} vs {expected}"
        );
        assert!(
            (reference_power - expected).abs() < 0.15 * expected,
            "reference noise power {reference_power} vs {expected}"
        );
    }

    #[test]
    fn trace_mode_matches_untraced_bitwise_without_noise() {
        let (h, inputs) = setup(3, 7, 6);
        let cond = busy_conditions(7, 7, false);
        let engine = OtaEngine::new(&h);
        let mut r1 = SimRng::seed_from_u64(8);
        let mut r2 = SimRng::seed_from_u64(8);
        let trace = engine.traced(&inputs[0], &cond, &mut r1);
        let scores = engine.scores(&inputs[0], &cond, &mut r2);
        for (a, b) in trace.scores.iter().zip(&scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(trace.rows.len(), 3 * 7);
    }

    #[test]
    fn run_honours_the_trace_flag() {
        let (h, inputs) = setup(2, 5, 9);
        let cond = OtaConditions::ideal(5);
        let engine = OtaEngine::new(&h);
        let mut rng = SimRng::seed_from_u64(1);
        let plain = engine.run(&InferenceRequest::new(&inputs[0], cond.clone()), &mut rng);
        assert!(plain.trace.is_none());
        let mut rng = SimRng::seed_from_u64(1);
        let traced = engine.run(
            &InferenceRequest::new(&inputs[0], cond).with_trace(),
            &mut rng,
        );
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.scores, traced.scores);
        assert_eq!(plain.predicted, traced.predicted);
    }

    #[test]
    fn run_batch_handles_mixed_trace_requests() {
        let (h, inputs) = setup(2, 6, 10);
        let cond = OtaConditions::ideal(6);
        let engine = OtaEngine::new(&h);
        let requests: Vec<InferenceRequest<'_>> = inputs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let req = InferenceRequest::new(x, cond.clone());
                if i % 2 == 0 {
                    req.with_trace()
                } else {
                    req
                }
            })
            .collect();
        let outcomes = engine.run_batch(&requests, 3, 4);
        assert_eq!(outcomes.len(), requests.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.trace.is_some(), i % 2 == 0);
            assert_eq!(o.predicted, argmax(&o.scores));
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (h, _) = setup(2, 4, 11);
        let engine = OtaEngine::new(&h);
        assert!(engine
            .batch_with(&[], 1, 2, |_| OtaConditions::ideal(4))
            .is_empty());
        assert!(engine
            .batch_predict_with(&[], 1, 2, |_| OtaConditions::ideal(4))
            .is_empty());
    }

    #[test]
    fn fused_matches_scalar_reference_bitwise() {
        let (h, inputs) = setup(5, 11, 20);
        let engine = OtaEngine::new(&h);
        for &(shift, noisy, cancel) in &[
            (-3isize, true, true),
            (0, false, true),
            (7, true, false),
            (25, false, false),
        ] {
            let mut cond = busy_conditions(11, 21, noisy);
            cond.sync_shift = shift;
            cond.cancellation = cancel;
            for x in &inputs {
                let mut r1 = SimRng::seed_from_u64(5);
                let mut r2 = SimRng::seed_from_u64(5);
                let fused = engine.scores(x, &cond, &mut r1);
                let scalar = engine.scores_scalar(x, &cond, &mut r2);
                assert_eq!(fused.len(), scalar.len());
                for (a, b) in fused.iter().zip(&scalar) {
                    assert_eq!(a.to_bits(), b.to_bits(), "shift {shift}");
                }
            }
        }
    }

    #[test]
    fn borrowed_planes_match_owned_planes_bitwise() {
        let (h, inputs) = setup(4, 8, 22);
        let cond = busy_conditions(8, 23, true);
        let planes = metaai_math::CPlanes::from_cmat(&h);
        let owned = OtaEngine::new(&h);
        let lent = OtaEngine::with_planes(&h, &planes);
        for x in &inputs {
            let mut r1 = SimRng::seed_from_u64(9);
            let mut r2 = SimRng::seed_from_u64(9);
            assert_eq!(
                owned.scores(x, &cond, &mut r1),
                lent.scores(x, &cond, &mut r2)
            );
        }
    }

    #[test]
    fn predictions_agree_between_batch_apis() {
        let (h, inputs) = setup(5, 10, 12);
        let engine = OtaEngine::new(&h);
        let make = |rng: &mut SimRng| {
            let mut cond = busy_conditions(10, 13, true);
            cond.sync_shift = rng.below(10) as isize;
            cond
        };
        let full = engine.batch_with(&inputs, 5, 6, make);
        let preds = engine.batch_predict_with(&inputs, 5, 6, make);
        assert_eq!(full.iter().map(|o| o.predicted).collect::<Vec<_>>(), preds);
    }
}
