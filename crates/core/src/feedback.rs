//! The receiver-feedback reconfiguration protocol (Sec 4 of the paper:
//! "When the receiver moves to new locations, MetaAI employs a feedback
//! protocol to reconfigure the MTS stages accordingly").
//!
//! The loop:
//!
//! 1. between inferences the metasurface briefly presents a *beacon*
//!    configuration — the beam steered at the calibrated receiver
//!    position — and the receiver reports the received beacon power
//!    (a scalar; no raw data leaves the receiver);
//! 2. when the beacon power falls below a fraction of its calibrated
//!    reference (the receiver has left the beam), the controller triggers
//!    recalibration: a beam scan re-estimates the azimuth, the schedule
//!    is re-solved for the new geometry, and inference resumes;
//! 3. [`track`] simulates the whole race for a receiver moving along a
//!    trajectory, accounting for the recalibration dead time.

use crate::config::SystemConfig;
use crate::engine::OtaEngine;
use crate::mobility::MobilityModel;
use crate::pipeline::{redeploy, MetaAiSystem};
use metaai_math::rng::SimRng;
use metaai_math::CVec;
use metaai_mts::control::ControlModel;
use metaai_nn::data::ComplexDataset;
use metaai_rf::geometry::Point3;

/// Beacon-power monitor: decides when the deployed schedule has gone
/// stale.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackMonitor {
    /// Trigger when the received beacon power falls below this fraction
    /// of the power recorded at calibration time (0.5 = −3 dB).
    pub power_threshold: f64,
    /// Consecutive low-power reports required before triggering
    /// (debounces fading dips).
    pub debounce: usize,
}

impl Default for FeedbackMonitor {
    fn default() -> Self {
        FeedbackMonitor {
            power_threshold: 0.5,
            debounce: 2,
        }
    }
}

impl FeedbackMonitor {
    /// The margin of one score vector: top / runner-up (∞-safe). A useful
    /// confidence diagnostic, reported in the track trace.
    pub fn margin(scores: &[f64]) -> f64 {
        assert!(scores.len() >= 2, "need at least two classes");
        let mut top = f64::NEG_INFINITY;
        let mut second = f64::NEG_INFINITY;
        for &s in scores {
            if s > top {
                second = top;
                top = s;
            } else if s > second {
                second = s;
            }
        }
        if second <= 0.0 {
            f64::INFINITY
        } else {
            top / second
        }
    }

    /// True when the recent beacon-power ratios (received / reference)
    /// say the schedule is stale.
    pub fn should_recalibrate(&self, recent_power_ratios: &[f64]) -> bool {
        if recent_power_ratios.len() < self.debounce {
            return false;
        }
        recent_power_ratios[recent_power_ratios.len() - self.debounce..]
            .iter()
            .all(|&r| r < self.power_threshold)
    }
}

/// The beacon power a receiver at `rx` would measure from `array`
/// beam-steered at the *calibrated* receiver position: the squared
/// magnitude of the beamformed channel.
pub fn beacon_power(
    array: &mut metaai_mts::array::MtsArray,
    tx: Point3,
    calibrated_rx: Point3,
    actual_rx: Point3,
    freq_hz: f64,
) -> f64 {
    // Steer at the calibrated azimuth (as the controller believes it).
    let az = (calibrated_rx.x - array.center.x).atan2(calibrated_rx.y - array.center.y);
    let codes = metaai_mts::beamscan::steering_codes(array, tx, az, freq_hz);
    array.configure(&codes);
    let link = metaai_mts::channel::MtsLink::new(array, tx, actual_rx, freq_hz);
    link.channel(array).norm_sq()
}

/// One step of a tracking simulation.
#[derive(Clone, Debug)]
pub struct TrackStep {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Receiver position at this step.
    pub rx: Point3,
    /// Whether the system was mid-recalibration (inference unavailable).
    pub recalibrating: bool,
    /// Whether the inference (if any) was correct.
    pub correct: Option<bool>,
    /// Reported score margin (confidence feedback).
    pub margin: Option<f64>,
}

/// Outcome of a tracking run.
#[derive(Clone, Debug)]
pub struct TrackReport {
    /// Per-step trace.
    pub steps: Vec<TrackStep>,
    /// Number of recalibrations triggered.
    pub recalibrations: usize,
    /// Accuracy over the steps where inference ran.
    pub accuracy: f64,
    /// Fraction of steps lost to recalibration dead time.
    pub downtime: f64,
}

/// Simulates a receiver moving along `trajectory` (one position per
/// inference attempt, `step_s` seconds apart) while the feedback protocol
/// keeps the deployment fresh.
pub fn track(
    system: &MetaAiSystem,
    test: &ComplexDataset,
    trajectory: &[Point3],
    step_s: f64,
    monitor: &FeedbackMonitor,
    control: &ControlModel,
    mobility: &MobilityModel,
) -> TrackReport {
    assert!(!test.is_empty(), "need test samples to track with");
    let mut current = redeploy(system, &system.config.clone());
    let mut ratios: Vec<f64> = Vec::new();
    let mut steps = Vec::new();
    let mut recalibrations = 0usize;
    let mut dead_until = f64::NEG_INFINITY;
    let mut rng = SimRng::derive(system.config.seed, "feedback-track");

    // Beacon reference power at the calibrated position.
    let mut beacon_array = current.array.clone();
    let mut reference = beacon_power(
        &mut beacon_array,
        current.config.tx,
        current.config.rx,
        current.config.rx,
        current.config.freq_hz,
    );

    for (k, &rx) in trajectory.iter().enumerate() {
        let t = k as f64 * step_s;
        if t < dead_until {
            steps.push(TrackStep {
                time_s: t,
                rx,
                recalibrating: true,
                correct: None,
                margin: None,
            });
            continue;
        }

        // One inference at the *actual* receiver position with the
        // *currently deployed* (possibly stale) schedule.
        let live_link = metaai_mts::channel::MtsLink::new(
            &current.array,
            current.config.tx,
            rx,
            current.config.freq_hz,
        );
        let live_channels =
            crate::ota::realize_channels(&current.schedule, &live_link, &current.array);
        let i = k % test.len();
        let x: &CVec = &test.inputs[i];
        let cond = current.default_conditions(x.len(), &mut rng);
        let scores = OtaEngine::new(&live_channels).scores(x, &cond, &mut rng);
        let margin = FeedbackMonitor::margin(&scores);
        let correct = metaai_math::stats::argmax(&scores) == test.labels[i];

        // Beacon feedback: measured at the actual position against the
        // calibrated steering.
        let p = beacon_power(
            &mut beacon_array,
            current.config.tx,
            current.config.rx,
            rx,
            current.config.freq_hz,
        );
        ratios.push(p / reference);

        steps.push(TrackStep {
            time_s: t,
            rx,
            recalibrating: false,
            correct: Some(correct),
            margin: Some(margin),
        });

        if monitor.should_recalibrate(&ratios) {
            // Beam scan + re-solve at the receiver's current position.
            recalibrations += 1;
            ratios.clear();
            let new_cfg = SystemConfig {
                rx,
                ..current.config.clone()
            };
            current = redeploy(&current, &new_cfg);
            beacon_array = current.array.clone();
            reference = beacon_power(
                &mut beacon_array,
                current.config.tx,
                rx,
                rx,
                current.config.freq_hz,
            );
            dead_until = t + mobility.recalibration_s(control);
        }
    }

    let decided: Vec<&TrackStep> = steps.iter().filter(|s| s.correct.is_some()).collect();
    let correct = decided.iter().filter(|s| s.correct == Some(true)).count();
    TrackReport {
        recalibrations,
        accuracy: if decided.is_empty() {
            0.0
        } else {
            correct as f64 / decided.len() as f64
        },
        downtime: 1.0 - decided.len() as f64 / steps.len().max(1) as f64,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_nn::augment::Augmentation;
    use metaai_nn::train::{toy_problem, TrainConfig};
    use metaai_rf::geometry::{deg_to_rad, place_at};

    fn system() -> (MetaAiSystem, ComplexDataset) {
        let train = toy_problem(3, 32, 40, 0.35, 60, 160);
        let test = toy_problem(3, 32, 20, 0.35, 60, 260);
        let cfg = SystemConfig::paper_default();
        let tcfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        }
        .with_augmentation(Augmentation::cdfa_default());
        let sys = MetaAiSystem::builder()
            .config(cfg)
            .train_and_deploy(&train, &tcfg);
        (sys, test)
    }

    #[test]
    fn margin_orders_confidence() {
        assert!(FeedbackMonitor::margin(&[10.0, 1.0]) > FeedbackMonitor::margin(&[10.0, 9.0]));
        assert_eq!(FeedbackMonitor::margin(&[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn monitor_debounces() {
        let m = FeedbackMonitor::default();
        assert!(!m.should_recalibrate(&[0.1]), "one dip is not enough");
        assert!(m.should_recalibrate(&[1.0, 0.1, 0.2]));
        assert!(!m.should_recalibrate(&[0.1, 1.0]), "recovered");
        assert!(!m.should_recalibrate(&[1.0, 0.9]));
    }

    #[test]
    fn beacon_power_peaks_at_the_calibrated_position() {
        let cfg = SystemConfig::paper_default();
        let mut array = metaai_mts::array::MtsArray::paper_prototype(cfg.prototype, cfg.mts_center);
        let on_target = beacon_power(&mut array, cfg.tx, cfg.rx, cfg.rx, cfg.freq_hz);
        let off = place_at(cfg.mts_center, 3.0, deg_to_rad(90.0 - 15.0), 1.1);
        let off_target = beacon_power(&mut array, cfg.tx, cfg.rx, off, cfg.freq_hz);
        assert!(
            on_target > 4.0 * off_target,
            "beam rolls off: on {on_target:.3e} vs 25° off {off_target:.3e}"
        );
    }

    #[test]
    fn static_receiver_never_recalibrates() {
        let (sys, test) = system();
        let trajectory = vec![sys.config.rx; 12];
        let report = track(
            &sys,
            &test,
            &trajectory,
            0.5,
            &FeedbackMonitor::default(),
            &ControlModel::default(),
            &MobilityModel::paper_prototype(0.05),
        );
        assert_eq!(report.recalibrations, 0, "static Rx must stay calibrated");
        assert!(report.accuracy > 0.6, "accuracy {}", report.accuracy);
        assert_eq!(report.downtime, 0.0);
    }

    #[test]
    fn moving_receiver_triggers_recalibration_and_recovers() {
        let (sys, test) = system();
        // Walk the receiver 35° around the arc — far outside the beam.
        let mts = sys.config.mts_center;
        let trajectory: Vec<Point3> = (0..30)
            .map(|k| {
                let angle = 40.0 - 35.0 * (k as f64 / 29.0).min(1.0);
                place_at(mts, 3.0, deg_to_rad(90.0 - angle), 1.1)
            })
            .collect();
        let report = track(
            &sys,
            &test,
            &trajectory,
            0.5,
            &FeedbackMonitor::default(),
            &ControlModel::default(),
            &MobilityModel::paper_prototype(0.05),
        );
        assert!(
            report.recalibrations >= 1,
            "a 35° walk must trigger the feedback protocol"
        );
        // The last few steps (after the final recalibration) must work.
        let tail_correct = report
            .steps
            .iter()
            .rev()
            .take(4)
            .filter(|s| s.correct == Some(true))
            .count();
        assert!(
            tail_correct >= 2,
            "post-recalibration accuracy not restored"
        );
    }
}
