//! Mapping trained network weights onto metasurface schedules.
//!
//! After digital training produces `H_des ∈ ℂ^{R×U}`, the mapper:
//!
//! 1. picks one *global* scale σ placing the largest weight at
//!    `κ · reachable radius` — a common factor across all outputs, which
//!    is classification-invariant (Sec 3.2 of the paper);
//! 2. solves Eqn 7 per (output, symbol) for the 2-bit configuration whose
//!    channel sum approximates `σ·w_{r,i}` (optionally Eqn 8's
//!    multipath-aware variant, offsetting a known static `H_e`);
//! 3. records both the code schedule (what the controller loads) and the
//!    achieved complex sums (what the physics will deliver).

use crate::config::SystemConfig;
use metaai_math::{CMat, C64};
use metaai_mts::array::MtsArray;
use metaai_mts::atom::PhaseCode;
use metaai_mts::channel::MtsLink;
use metaai_mts::solver::{SolverScratch, StateTable, WeightSolver};
use metaai_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::sync::OnceLock;

/// Mapper-stage instruments, registered once with the global registry.
struct MapperMetrics {
    maps: Counter,
    weights_mapped: Counter,
    map_seconds: Histogram,
}

fn metrics() -> &'static MapperMetrics {
    static METRICS: OnceLock<MapperMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metaai_telemetry::global();
        MapperMetrics {
            maps: r.counter("metaai.core.mapper.maps"),
            weights_mapped: r.counter("metaai.core.mapper.weights_mapped"),
            map_seconds: r.latency_histogram("metaai.core.mapper.map_seconds"),
        }
    })
}

/// Registers the mapper's instruments with the global telemetry registry.
pub fn register_metrics() {
    let _ = metrics();
}

/// Weights solved per parallel work item in [`WeightMapper::map`]. Each
/// chunk owns one [`SolverScratch`], amortizing buffer allocation over the
/// chunk instead of paying it per (r, i).
const MAP_CHUNK: usize = 32;

/// The complete metasurface programme for one trained network: one
/// configuration per (output class, input symbol).
#[derive(Clone, Debug)]
pub struct WeightSchedule {
    /// `codes[r][i]` is the atom configuration realizing weight `(r, i)`.
    pub codes: Vec<Vec<Vec<PhaseCode>>>,
    /// Achieved normalized channel sums (`Σ e^{j(φ^p+φ)}`), `R × U`.
    pub achieved: CMat,
    /// The global weight scale σ applied before solving.
    pub scale: f64,
    /// RMS solver residual across all weights (normalized units).
    pub rms_residual: f64,
}

impl WeightSchedule {
    /// Number of output classes.
    pub fn num_outputs(&self) -> usize {
        self.codes.len()
    }

    /// Number of input symbols.
    pub fn num_symbols(&self) -> usize {
        self.codes.first().map_or(0, |c| c.len())
    }
}

/// Builds [`WeightSchedule`]s for a fixed link geometry.
pub struct WeightMapper {
    /// The far-field link the schedule is solved against.
    pub link: MtsLink,
    /// Single-target solver sharing the link's path phasors.
    solver: WeightSolver,
    /// Precomputed per-atom state contributions, shared by every solve.
    table: StateTable,
    /// Safe reachable radius (normalized units).
    pub reach: f64,
    /// κ safety factor.
    pub kappa: f64,
}

impl WeightMapper {
    /// Creates a mapper for the system's default geometry.
    pub fn new(config: &SystemConfig, array: &MtsArray) -> Self {
        let link = MtsLink::new(array, config.tx, config.rx, config.freq_hz);
        WeightMapper::from_link(link, config.kappa)
    }

    /// Creates a mapper from an explicit link.
    pub fn from_link(link: MtsLink, kappa: f64) -> Self {
        // κ = 0 would scale every weight to the origin and make the
        // schedule meaningless, so zero is excluded (the old
        // `(0.0..=1.0).contains` check let it through).
        assert!(kappa > 0.0 && kappa <= 1.0, "κ must be in (0, 1]");
        let solver = WeightSolver::single(link.path_phasors.clone(), 2);
        let table = solver.state_table();
        let reach = solver.reachable_radius(0);
        WeightMapper {
            link,
            solver,
            table,
            reach,
            kappa,
        }
    }

    /// The global scale σ for a weight matrix: `κ·reach / max|w|`.
    pub fn weight_scale(&self, weights: &CMat) -> f64 {
        let max_w = weights.max_abs();
        assert!(max_w > 0.0, "cannot map an all-zero weight matrix");
        self.kappa * self.reach / max_w
    }

    /// Solves the full schedule for `weights` (Eqn 7). `h_env_offset` is
    /// the Eqn 8 compensation term in *normalized* units (`H_e / α_p`),
    /// or zero when the cancellation scheme handles multipath instead.
    pub fn map(&self, weights: &CMat, h_env_offset: C64) -> WeightSchedule {
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.map_seconds.span());
        let scale = self.weight_scale(weights);
        let r = weights.rows();
        let u = weights.cols();
        if let Some(m) = tele {
            m.maps.inc();
            m.weights_mapped.add((r * u) as u64);
        }

        // Solve each (r, i) independently — embarrassingly parallel. Work
        // is chunked so each worker reuses one solver scratch across its
        // chunk; the state table is shared read-only by everyone.
        let total = r * u;
        let per_chunk: Vec<Vec<(Vec<PhaseCode>, C64, f64)>> = (0..total.div_ceil(MAP_CHUNK))
            .into_par_iter()
            .map(|c| {
                let mut scratch = SolverScratch::new();
                let lo = c * MAP_CHUNK;
                let hi = (lo + MAP_CHUNK).min(total);
                (lo..hi)
                    .map(|idx| {
                        let (row, col) = (idx / u, idx % u);
                        let target = weights[(row, col)] * scale - h_env_offset;
                        let res = self.solver.solve_with(&[target], &self.table, &mut scratch);
                        (res.codes, res.achieved[0], res.residual)
                    })
                    .collect()
            })
            .collect();

        let mut codes = vec![vec![Vec::new(); u]; r];
        let mut achieved = CMat::zeros(r, u);
        let mut sq_sum = 0.0;
        for (idx, (c, a, resid)) in per_chunk.into_iter().flatten().enumerate() {
            let (row, col) = (idx / u, idx % u);
            codes[row][col] = c;
            achieved[(row, col)] = a;
            sq_sum += resid * resid;
        }

        WeightSchedule {
            codes,
            achieved,
            scale,
            rms_residual: (sq_sum / (r * u) as f64).sqrt(),
        }
    }

    /// [`map`](Self::map), warm-started from a previous schedule's codes —
    /// the online-adaptation path: after a small channel drift the old
    /// configuration is already near the new optimum, so each (r, i)
    /// solve is seeded with `warm.codes[r][i]` instead of the
    /// phase-aligned initialization and typically converges in a sweep
    /// or two.
    ///
    /// Deliberately **sequential**: the re-solve runs on the adaptation
    /// controller's single low-priority thread, so it neither steals
    /// cores from serving workers nor lets the worker count influence the
    /// result (remap output is a pure function of its inputs). One
    /// caller-owned `scratch` is reused across all `R × U` solves — reuse
    /// it across rounds too.
    pub fn remap(
        &self,
        weights: &CMat,
        h_env_offset: C64,
        warm: &WeightSchedule,
        scratch: &mut SolverScratch,
    ) -> WeightSchedule {
        let tele = metaai_telemetry::enabled().then(metrics);
        let _span = tele.map(|m| m.map_seconds.span());
        let scale = self.weight_scale(weights);
        let r = weights.rows();
        let u = weights.cols();
        assert_eq!(
            (warm.num_outputs(), warm.num_symbols()),
            (r, u),
            "warm schedule shape must match the weight matrix"
        );
        if let Some(m) = tele {
            m.maps.inc();
            m.weights_mapped.add((r * u) as u64);
        }

        let mut codes = vec![vec![Vec::new(); u]; r];
        let mut achieved = CMat::zeros(r, u);
        let mut sq_sum = 0.0;
        for row in 0..r {
            for col in 0..u {
                let target = weights[(row, col)] * scale - h_env_offset;
                let res =
                    self.solver
                        .solve_warm(&[target], &warm.codes[row][col], &self.table, scratch);
                achieved[(row, col)] = res.achieved[0];
                sq_sum += res.residual * res.residual;
                codes[row][col] = res.codes;
            }
        }

        WeightSchedule {
            codes,
            achieved,
            scale,
            rms_residual: (sq_sum / (r * u) as f64).sqrt(),
        }
    }

    /// Relative weight-realization error: RMS residual divided by the RMS
    /// of the scaled targets. Small values (≪ 1) mean the hardware
    /// faithfully reproduces the trained network.
    pub fn relative_error(&self, weights: &CMat, schedule: &WeightSchedule) -> f64 {
        let rms_target =
            schedule.scale * weights.fro_norm() / ((weights.rows() * weights.cols()) as f64).sqrt();
        schedule.rms_residual / rms_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaai_math::rng::SimRng;
    use metaai_mts::array::Prototype;

    fn small_mapper() -> WeightMapper {
        let config = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, config.mts_center);
        WeightMapper::new(&config, &array)
    }

    fn random_weights(r: usize, u: usize, seed: u64) -> CMat {
        let mut rng = SimRng::seed_from_u64(seed);
        CMat::from_fn(r, u, |_, _| rng.complex_gaussian(1.0))
    }

    #[test]
    fn scale_places_max_weight_at_kappa_reach() {
        let m = small_mapper();
        let w = random_weights(3, 8, 1);
        let s = m.weight_scale(&w);
        assert!((s * w.max_abs() - m.kappa * m.reach).abs() < 1e-9);
    }

    #[test]
    fn schedule_covers_all_weights() {
        let m = small_mapper();
        let w = random_weights(3, 6, 2);
        let sched = m.map(&w, C64::ZERO);
        assert_eq!(sched.num_outputs(), 3);
        assert_eq!(sched.num_symbols(), 6);
        assert_eq!(sched.codes[2][5].len(), 256);
    }

    #[test]
    fn achieved_sums_track_scaled_targets() {
        let m = small_mapper();
        let w = random_weights(2, 5, 3);
        let sched = m.map(&w, C64::ZERO);
        let rel = m.relative_error(&w, &sched);
        assert!(rel < 0.02, "relative realization error {rel}");
    }

    #[test]
    fn env_offset_shifts_targets() {
        // With Eqn 8 compensation, achieved ≈ σ·w − H_e/α.
        let m = small_mapper();
        let w = random_weights(2, 3, 4);
        let offset = C64::new(5.0, -3.0);
        let sched = m.map(&w, offset);
        let expect = w[(1, 2)] * sched.scale - offset;
        let got = sched.achieved[(1, 2)];
        assert!((expect - got).abs() < 2.0, "expected ≈{expect}, got {got}");
    }

    #[test]
    fn mapping_is_deterministic() {
        let m = small_mapper();
        let w = random_weights(2, 4, 5);
        let a = m.map(&w, C64::ZERO);
        let b = m.map(&w, C64::ZERO);
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.codes, b.codes);
    }

    #[test]
    fn remap_tracks_a_moved_link_as_well_as_a_cold_map() {
        // Map against the paper geometry, nudge the receiver, and warm
        // re-map against the new link from the old schedule: quality must
        // stay within a whisker of a from-scratch map of the new link.
        let config = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, config.mts_center);
        let before = WeightMapper::new(&config, &array);
        let moved = SystemConfig {
            rx: metaai_rf::geometry::place_at(
                config.mts_center,
                3.0,
                metaai_rf::geometry::deg_to_rad(90.0 - 43.0),
                config.rx.z,
            ),
            ..config.clone()
        };
        let after = WeightMapper::new(&moved, &array);

        let w = random_weights(3, 6, 8);
        let base = before.map(&w, C64::ZERO);
        let cold = after.map(&w, C64::ZERO);
        let mut scratch = SolverScratch::new();
        let warm = after.remap(&w, C64::ZERO, &base, &mut scratch);

        assert_eq!(warm.codes.len(), 3);
        assert_eq!(warm.codes[0].len(), 6);
        let warm_rel = after.relative_error(&w, &warm);
        let cold_rel = after.relative_error(&w, &cold);
        assert!(
            warm_rel < cold_rel + 0.01,
            "warm remap error {warm_rel} vs cold {cold_rel}"
        );

        // And it is a pure function of its inputs: scratch reuse across
        // rounds changes nothing.
        let again = after.remap(&w, C64::ZERO, &base, &mut scratch);
        assert_eq!(warm.codes, again.codes);
        assert_eq!(warm.achieved, again.achieved);
    }

    #[test]
    #[should_panic(expected = "all-zero weight")]
    fn rejects_zero_weights() {
        let m = small_mapper();
        m.weight_scale(&CMat::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "κ must be in (0, 1]")]
    fn rejects_zero_kappa() {
        // Regression: the old `(0.0..=1.0).contains(&kappa)` check let
        // κ = 0 through despite the "(0, 1]" message.
        let config = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, config.mts_center);
        let link = MtsLink::new(&array, config.tx, config.rx, config.freq_hz);
        WeightMapper::from_link(link, 0.0);
    }

    #[test]
    fn accepts_boundary_kappa_of_one() {
        let config = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, config.mts_center);
        let link = MtsLink::new(&array, config.tx, config.rx, config.freq_hz);
        let m = WeightMapper::from_link(link, 1.0);
        assert_eq!(m.kappa, 1.0);
    }
}
