//! The over-the-air computation itself — Eqn 3 of the paper.
//!
//! For output class `r`, the transmitter sends its symbol stream once and
//! the receiver accumulates
//!
//! ```text
//! y_r = | Σ_i H_r(t_i) · x_i |
//! ```
//!
//! where `H_r(t_i)` is the channel the metasurface presents during symbol
//! `i`. What the antenna actually receives each chip is the superposition
//! of the programmed MTS path and the *environmental* channel, plus
//! receiver noise; the intra-symbol cancellation scheme (zero-mean chips +
//! π-flipped weights, `metaai_phy::shaping`) removes the environmental
//! term without any channel estimation.

use metaai_math::rng::SimRng;
use metaai_math::{CMat, CVec, C64};
use metaai_mts::array::MtsArray;
use metaai_mts::channel::MtsLink;
use metaai_phy::shaping;
use metaai_rf::environment::EnvChannel;
use metaai_rf::noise::Awgn;

/// Realizes the *physical* channel matrix `H[r, i]` a schedule produces on
/// a (possibly imperfect) array: per-atom fabrication phase errors and
/// stuck-at faults are applied on top of the programmed codes, then the
/// far-field sum and common amplitude `α_p`.
pub fn realize_channels(
    schedule: &crate::mapper::WeightSchedule,
    link: &MtsLink,
    array: &MtsArray,
) -> CMat {
    let r = schedule.num_outputs();
    let u = schedule.num_symbols();
    assert_eq!(array.num_atoms(), link.num_atoms(), "array/link mismatch");
    CMat::from_fn(r, u, |row, col| {
        let codes = &schedule.codes[row][col];
        let sum: C64 = codes
            .iter()
            .zip(&array.atoms)
            .zip(&link.path_phasors)
            .map(|((code, atom), &path)| {
                let eff = atom.stuck_at.unwrap_or(*code);
                path * C64::from_polar(atom.amplitude, eff.phase() + atom.phase_error)
            })
            .sum();
        sum * link.alpha
    })
}

/// Mean per-chip MTS-path signal power of a channel matrix (the anchor for
/// SNR configuration; constellations are unit average power).
pub fn signal_power(h: &CMat) -> f64 {
    let n = (h.rows() * h.cols()) as f64;
    h.as_slice().iter().map(|z| z.norm_sq()).sum::<f64>() / n
}

/// Channel conditions during one inference.
#[derive(Clone, Debug)]
pub struct OtaConditions {
    /// Per-symbol environmental channel (static or dynamic).
    pub env: EnvChannel,
    /// Per-symbol amplitude factor on the MTS path (1.0 = clear;
    /// < 1 while an interferer obstructs it).
    pub mts_factor: Vec<f64>,
    /// Receiver noise.
    pub awgn: Awgn,
    /// Residual synchronization error, in whole symbols (signed: the
    /// weight schedule may lag or lead after preamble centring).
    pub sync_shift: isize,
    /// Whether intra-symbol multipath cancellation is active.
    pub cancellation: bool,
}

impl OtaConditions {
    /// Ideal conditions: no environment, no noise, perfect sync.
    pub fn ideal(n_symbols: usize) -> Self {
        OtaConditions {
            env: EnvChannel::silent(n_symbols),
            mts_factor: vec![1.0; n_symbols],
            awgn: Awgn::off(),
            sync_shift: 0,
            cancellation: true,
        }
    }

    /// Number of symbols these conditions cover.
    pub fn len(&self) -> usize {
        self.env.len()
    }

    /// True when the conditions cover no symbols.
    pub fn is_empty(&self) -> bool {
        self.env.is_empty()
    }
}

/// The receiver-side accumulator of Eqn 3.
pub struct OtaReceiver;

impl OtaReceiver {
    /// Simulates one transmission computing output `r` with channel row
    /// `h_row`, returning the complex accumulation before magnitude.
    pub fn accumulate(h_row: &[C64], x: &CVec, cond: &OtaConditions, rng: &mut SimRng) -> C64 {
        assert_eq!(h_row.len(), x.len(), "one channel per symbol");
        assert_eq!(cond.len(), x.len(), "conditions must cover all symbols");
        // Residual sync error: the weight schedule lags the data; the
        // equivalent pairing is the data cyclically shifted (the same
        // model CDFA trains against).
        let xs = x.cyclic_shift_signed(cond.sync_shift);

        let mut acc = C64::ZERO;
        for i in 0..xs.len() {
            let h = h_row[i] * cond.mts_factor[i];
            let he = cond.env.gain_at(i);
            if cond.cancellation {
                // Two zero-mean chips; the MTS flips its weight by π on
                // the second. The static-in-symbol environment cancels.
                for slot in 0..shaping::SLOTS_PER_SYMBOL {
                    let chip = shaping::shape_chip(xs[i], slot);
                    let w = shaping::weight_chip(h, slot);
                    acc += (he + w) * chip + cond.awgn.sample(rng);
                }
            } else {
                acc += (he + h) * xs[i] + cond.awgn.sample(rng);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::mapper::WeightMapper;
    use metaai_mts::array::Prototype;

    fn mapper_and_array() -> (WeightMapper, MtsArray) {
        let config = SystemConfig::paper_default();
        let array = MtsArray::paper_prototype(Prototype::DualBand, config.mts_center);
        (WeightMapper::new(&config, &array), array)
    }

    fn random_weights(r: usize, u: usize, seed: u64) -> CMat {
        let mut rng = SimRng::seed_from_u64(seed);
        CMat::from_fn(r, u, |_, _| rng.complex_gaussian(1.0))
    }

    #[test]
    fn realized_channels_match_achieved_sums_on_clean_array() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(2, 4, 1);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        for r in 0..2 {
            for i in 0..4 {
                let expect = sched.achieved[(r, i)] * mapper.link.alpha;
                assert!(
                    (h[(r, i)] - expect).abs() < 1e-9,
                    "clean array must reproduce solver sums"
                );
            }
        }
    }

    #[test]
    fn phase_noise_perturbs_realized_channels() {
        let (mapper, mut array) = mapper_and_array();
        let w = random_weights(2, 3, 2);
        let sched = mapper.map(&w, C64::ZERO);
        let clean = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(3);
        array.inject_phase_noise(0.1, &mut rng);
        let noisy = realize_channels(&sched, &mapper.link, &array);
        assert!(clean != noisy);
        // Small phase noise: channels stay close in aggregate. (Individual
        // small weights can shift a lot relatively — the per-atom errors
        // are an absolute, not relative, perturbation of the sum.)
        let mut diff = clean.clone();
        diff.axpy(-1.0, &noisy);
        let rel = diff.fro_norm() / clean.fro_norm();
        assert!(rel < 0.1, "relative perturbation {rel}");
    }

    #[test]
    fn ideal_conditions_reproduce_the_digital_dot_product() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(3, 8, 4);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(5);
        let x = CVec::from_fn(8, |_| rng.complex_gaussian(1.0));
        let cond = OtaConditions::ideal(8);
        let mut rng2 = SimRng::seed_from_u64(6);
        let scores = crate::engine::OtaEngine::new(&h).scores(&x, &cond, &mut rng2);
        // Compare to the digital network output, up to the global scale
        // (α·σ) and the coherent gain of the chip combining.
        let gain = mapper.link.alpha * sched.scale * shaping::coherent_gain();
        for (r, &score) in scores.iter().enumerate() {
            let digital = w.row_vec(r).dot(&x).abs() * gain;
            let rel = (score - digital).abs() / digital;
            assert!(rel < 0.05, "output {r}: OTA {score} vs digital {digital}");
        }
    }

    #[test]
    fn cancellation_removes_static_environment() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(2, 6, 7);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(8);
        let x = CVec::from_fn(6, |_| rng.complex_gaussian(1.0));

        // A brutally strong static environment, comparable to the MTS path.
        let he = C64::from_polar(signal_power(&h).sqrt() * 2.0, 1.0);
        let mut cond = OtaConditions::ideal(6);
        cond.env = EnvChannel::constant(he, 6);

        let mut r1 = SimRng::seed_from_u64(9);
        let with_env = OtaReceiver::accumulate(h.row(0), &x, &cond, &mut r1);
        let clean_cond = OtaConditions::ideal(6);
        let mut r2 = SimRng::seed_from_u64(9);
        let without_env = OtaReceiver::accumulate(h.row(0), &x, &clean_cond, &mut r2);
        assert!(
            (with_env - without_env).abs() < 1e-9,
            "cancellation must make the env term vanish exactly"
        );
    }

    #[test]
    fn without_cancellation_environment_leaks() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(2, 6, 10);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(11);
        let x = CVec::from_fn(6, |_| rng.complex_gaussian(1.0));

        let he = C64::from_polar(signal_power(&h).sqrt(), 0.5);
        let mut cond = OtaConditions::ideal(6);
        cond.cancellation = false;
        cond.env = EnvChannel::constant(he, 6);
        let mut clean = OtaConditions::ideal(6);
        clean.cancellation = false;

        let mut r1 = SimRng::seed_from_u64(12);
        let with_env = OtaReceiver::accumulate(h.row(0), &x, &cond, &mut r1);
        let mut r2 = SimRng::seed_from_u64(12);
        let without = OtaReceiver::accumulate(h.row(0), &x, &clean, &mut r2);
        assert!(
            (with_env - without).abs() > 1e-3,
            "env must leak without the scheme"
        );
    }

    #[test]
    fn sync_shift_changes_the_result() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(2, 8, 13);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(14);
        let x = CVec::from_fn(8, |_| rng.complex_gaussian(1.0));
        let mut cond = OtaConditions::ideal(8);
        let mut r1 = SimRng::seed_from_u64(15);
        let aligned = OtaReceiver::accumulate(h.row(1), &x, &cond, &mut r1);
        cond.sync_shift = 3;
        let mut r2 = SimRng::seed_from_u64(15);
        let shifted = OtaReceiver::accumulate(h.row(1), &x, &cond, &mut r2);
        assert!((aligned - shifted).abs() > 1e-6);
    }

    #[test]
    fn blockage_attenuates_the_computation() {
        let (mapper, array) = mapper_and_array();
        let w = random_weights(2, 4, 16);
        let sched = mapper.map(&w, C64::ZERO);
        let h = realize_channels(&sched, &mapper.link, &array);
        let mut rng = SimRng::seed_from_u64(17);
        let x = CVec::from_fn(4, |_| rng.complex_gaussian(1.0));
        let mut cond = OtaConditions::ideal(4);
        cond.mts_factor = vec![0.3; 4];
        let mut r1 = SimRng::seed_from_u64(18);
        let blocked = OtaReceiver::accumulate(h.row(0), &x, &cond, &mut r1).abs();
        let mut r2 = SimRng::seed_from_u64(18);
        let clear = OtaReceiver::accumulate(h.row(0), &x, &OtaConditions::ideal(4), &mut r2).abs();
        assert!((blocked - 0.3 * clear).abs() / clear < 1e-9);
    }

    #[test]
    fn signal_power_is_mean_square() {
        let h = CMat::from_fn(1, 2, |_, c| {
            if c == 0 {
                C64::real(1.0)
            } else {
                C64::real(3.0)
            }
        });
        assert!((signal_power(&h) - 5.0).abs() < 1e-12);
    }
}
