//! Signal tracing: record what actually happened on the air during one
//! inference, for debugging and demonstration — the role packet captures
//! play in a network stack.
//!
//! A [`InferenceTrace`] holds, per symbol and output class: the
//! transmitted symbol, the programmed weight, the environmental gain, the
//! received chips, and the running accumulation. [`write_csv`] dumps it
//! in a spreadsheet-friendly layout.

use metaai_math::C64;
use metaai_phy::shaping;
use std::io::{self, Write};

/// One symbol's worth of trace for one output class.
#[derive(Clone, Copy, Debug)]
pub struct TraceRow {
    /// Output class index.
    pub output: usize,
    /// Symbol index.
    pub symbol: usize,
    /// Transmitted symbol value.
    pub x: C64,
    /// Programmed MTS channel during this symbol.
    pub weight: C64,
    /// Environmental gain during this symbol.
    pub env: C64,
    /// Received chip values (after superposition and noise).
    pub chips: [C64; shaping::SLOTS_PER_SYMBOL],
    /// Accumulator value *after* this symbol.
    pub accumulator: C64,
}

/// A complete per-symbol record of one over-the-air inference.
#[derive(Clone, Debug)]
pub struct InferenceTrace {
    /// All rows, ordered by (output, symbol).
    pub rows: Vec<TraceRow>,
    /// Final class scores.
    pub scores: Vec<f64>,
    /// Predicted class.
    pub predicted: usize,
}

/// Writes the trace as CSV.
pub fn write_csv<W: Write>(trace: &InferenceTrace, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "output,symbol,x_re,x_im,weight_re,weight_im,env_re,env_im,chip0_re,chip0_im,chip1_re,chip1_im,acc_re,acc_im"
    )?;
    for row in &trace.rows {
        writeln!(
            w,
            "{},{},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}",
            row.output,
            row.symbol,
            row.x.re,
            row.x.im,
            row.weight.re,
            row.weight.im,
            row.env.re,
            row.env.im,
            row.chips[0].re,
            row.chips[0].im,
            row.chips[1].re,
            row.chips[1].im,
            row.accumulator.re,
            row.accumulator.im
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OtaEngine;
    use crate::ota::OtaConditions;
    use metaai_math::rng::SimRng;
    use metaai_math::{CMat, CVec};

    fn setup() -> (CMat, CVec, OtaConditions) {
        let mut rng = SimRng::seed_from_u64(1);
        let h = CMat::from_fn(3, 6, |_, _| rng.complex_gaussian(1.0));
        let x = CVec::from_fn(6, |_| rng.complex_gaussian(1.0));
        (h, x, OtaConditions::ideal(6))
    }

    #[test]
    fn trace_matches_the_untraced_engine() {
        let (h, x, cond) = setup();
        let engine = OtaEngine::new(&h);
        let mut r1 = SimRng::seed_from_u64(2);
        let mut r2 = SimRng::seed_from_u64(2);
        let trace = engine.traced(&x, &cond, &mut r1);
        let scores = engine.scores(&x, &cond, &mut r2);
        assert_eq!(trace.scores.len(), scores.len());
        for (a, b) in trace.scores.iter().zip(&scores) {
            assert!((a - b).abs() < 1e-12, "trace {a} vs engine {b}");
        }
    }

    #[test]
    fn accumulator_is_the_chip_sum() {
        let (h, x, cond) = setup();
        let mut rng = SimRng::seed_from_u64(3);
        let trace = OtaEngine::new(&h).traced(&x, &cond, &mut rng);
        // Recompute each output's accumulation from the recorded chips.
        for r in 0..3 {
            let rows: Vec<&TraceRow> = trace.rows.iter().filter(|t| t.output == r).collect();
            let total: C64 = rows.iter().flat_map(|t| t.chips.iter().copied()).sum();
            let last = rows.last().expect("rows").accumulator;
            assert!((total - last).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let (h, x, cond) = setup();
        let mut rng = SimRng::seed_from_u64(4);
        let trace = OtaEngine::new(&h).traced(&x, &cond, &mut rng);
        let mut buf = Vec::new();
        write_csv(&trace, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), trace.rows.len() + 1);
        assert!(text.starts_with("output,symbol"));
    }

    #[test]
    fn rows_cover_every_output_and_symbol() {
        let (h, x, cond) = setup();
        let mut rng = SimRng::seed_from_u64(5);
        let trace = OtaEngine::new(&h).traced(&x, &cond, &mut rng);
        assert_eq!(trace.rows.len(), 3 * 6);
        assert!(trace.predicted < 3);
    }
}
