//! Time-series generator — the Widar 3.0 gesture stand-in.
//!
//! Wi-Fi gesture data (Doppler spectrograms) are class-keyed temporal
//! patterns. We generate each gesture class as a chirp-plus-tones template
//! over a `width × height` time–frequency grid, apply per-sample time
//! warping (people never repeat a gesture identically), add noise, and
//! quantize — the same downstream path as the image datasets.

use crate::spec::DatasetSpec;
use crate::{BytesDataset, BytesSplit};
use metaai_math::rng::SimRng;

/// A gesture template: energy ridges over the time–frequency grid.
fn gesture_template(spec: &DatasetSpec, rng: &mut SimRng) -> Vec<f64> {
    let (w, h) = (spec.width, spec.height);
    let mut grid = vec![0.0; w * h];
    // Two to four Doppler ridges with class-specific trajectories.
    let ridges = 2 + rng.below(3);
    for _ in 0..ridges {
        let f0 = rng.uniform_range(0.15, 0.85) * h as f64;
        let slope = rng.uniform_range(-0.5, 0.5) * h as f64 / w as f64;
        let curve = rng.uniform_range(-0.3, 0.3) * h as f64 / (w as f64 * w as f64);
        let width = rng.uniform_range(1.0, 2.5);
        let amp = rng.uniform_range(0.6, 1.0);
        for t in 0..w {
            let centre = f0 + slope * t as f64 + curve * (t as f64) * (t as f64);
            for f in 0..h {
                let d = (f as f64 - centre) / width;
                grid[f * w + t] += amp * (-0.5 * d * d).exp();
            }
        }
    }
    grid
}

/// Renders one sample: time-warped template + noise, quantized to bytes.
fn render_sample(spec: &DatasetSpec, template: &[f64], rng: &mut SimRng) -> Vec<u8> {
    let (w, h) = (spec.width, spec.height);
    // Smooth random time warp: t' = t + a·sin(πt/w + φ).
    let warp_amp = spec.deform / 255.0 * 0.25 * w as f64;
    let warp_phase = rng.phase();
    let speed = rng.uniform_range(0.9, 1.1);
    let mut out = Vec::with_capacity(w * h);
    for f in 0..h {
        for t in 0..w {
            let tw = (t as f64 * speed
                + warp_amp * (std::f64::consts::PI * t as f64 / w as f64 + warp_phase).sin())
            .clamp(0.0, (w - 1) as f64);
            // Linear interpolation along time.
            let t0 = tw.floor() as usize;
            let t1 = (t0 + 1).min(w - 1);
            let frac = tw - t0 as f64;
            let v = template[f * w + t0] * (1.0 - frac) + template[f * w + t1] * frac;
            let noisy = 40.0 + 5.0 * spec.contrast * v + rng.normal(0.0, spec.pixel_noise);
            out.push(noisy.round().clamp(0.0, 255.0) as u8);
        }
    }
    out
}

/// Generates a full train/test split for the gesture dataset.
pub fn generate_series_split(spec: &DatasetSpec, seed: u64) -> BytesSplit {
    let mut prng = SimRng::derive(seed, "widar-templates");
    // `modes` variants per gesture class (different performers).
    let templates: Vec<Vec<Vec<f64>>> = (0..spec.classes)
        .map(|_| {
            (0..spec.modes)
                .map(|_| gesture_template(spec, &mut prng))
                .collect()
        })
        .collect();

    let gen = |count: usize, label: &str| -> BytesDataset {
        let mut rng = SimRng::derive(seed, &format!("widar-{label}"));
        let mut samples = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for i in 0..count {
            let class = i % spec.classes;
            let mode = rng.below(spec.modes);
            samples.push(render_sample(spec, &templates[class][mode], &mut rng));
            labels.push(class);
        }
        BytesDataset {
            samples,
            labels,
            num_classes: spec.classes,
        }
    };

    BytesSplit {
        train: gen(spec.train_samples, "train"),
        test: gen(spec.test_samples, "test"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetId, Scale};

    fn spec() -> DatasetSpec {
        DatasetSpec::of(DatasetId::Widar3, Scale::Quick)
    }

    #[test]
    fn split_shapes_are_correct() {
        let s = spec();
        let split = generate_series_split(&s, 1);
        assert_eq!(split.train.len(), s.train_samples);
        assert_eq!(split.train.samples[0].len(), s.feature_bytes());
        assert_eq!(split.train.num_classes, 6);
    }

    #[test]
    fn templates_have_ridge_structure() {
        let s = spec();
        let mut rng = SimRng::seed_from_u64(2);
        let t = gesture_template(&s, &mut rng);
        let peak = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!(peak > 2.0 * mean, "peak {peak} mean {mean}");
    }

    #[test]
    fn warping_makes_samples_differ() {
        let s = spec();
        let split = generate_series_split(&s, 3);
        // Two samples of the same class are never byte-identical.
        let (a, b) = (&split.train.samples[0], &split.train.samples[6]);
        assert_eq!(split.train.labels[0], split.train.labels[6]);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = spec();
        let a = generate_series_split(&s, 4);
        let b = generate_series_split(&s, 4);
        assert_eq!(a.train.samples, b.train.samples);
    }
}
