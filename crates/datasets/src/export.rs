//! Sample export for visual inspection: binary PGM (P5) images.
//!
//! Synthetic data is only trustworthy if you can look at it. This module
//! dumps any byte sample as a portable graymap so the class structure,
//! foreground masks, and noise levels are inspectable with any image
//! viewer:
//!
//! ```sh
//! cargo run --release -p metaai-cli --bin metaai -- train --dataset mnist …
//! # or programmatically:
//! ```
//!
//! ```no_run
//! use metaai_datasets::{generate, DatasetId, Scale};
//! use metaai_datasets::export::write_pgm;
//! let split = generate(DatasetId::Mnist, Scale::Quick, 1);
//! write_pgm(&split.train.samples[0], 28, 28, "sample0.pgm").unwrap();
//! ```

use std::io::{self, Write};
use std::path::Path;

/// Writes one `width × height` byte image as binary PGM (P5).
pub fn write_pgm<P: AsRef<Path>>(
    pixels: &[u8],
    width: usize,
    height: usize,
    path: P,
) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_pgm_to(pixels, width, height, &mut f)
}

/// Writes PGM bytes into any writer.
pub fn write_pgm_to<W: Write>(
    pixels: &[u8],
    width: usize,
    height: usize,
    w: &mut W,
) -> io::Result<()> {
    if pixels.len() != width * height {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "pixel count {} does not match {width}×{height}",
                pixels.len()
            ),
        ));
    }
    write!(w, "P5\n{width} {height}\n255\n")?;
    w.write_all(pixels)
}

/// Tiles the first `per_class` samples of every class into one contact
/// sheet (classes as rows), for a quick visual check of a whole dataset.
pub fn contact_sheet(
    samples: &[Vec<u8>],
    labels: &[usize],
    num_classes: usize,
    width: usize,
    height: usize,
    per_class: usize,
) -> (Vec<u8>, usize, usize) {
    assert_eq!(samples.len(), labels.len(), "one label per sample");
    let sheet_w = width * per_class;
    let sheet_h = height * num_classes;
    let mut sheet = vec![0u8; sheet_w * sheet_h];
    let mut placed = vec![0usize; num_classes];
    for (sample, &label) in samples.iter().zip(labels) {
        let col = placed[label];
        if col >= per_class {
            continue;
        }
        placed[label] += 1;
        let x0 = col * width;
        let y0 = label * height;
        for y in 0..height {
            let dst = (y0 + y) * sheet_w + x0;
            let src = y * width;
            sheet[dst..dst + width].copy_from_slice(&sample[src..src + width]);
        }
    }
    (sheet, sheet_w, sheet_h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_payload() {
        let pixels: Vec<u8> = (0..12).map(|i| (i * 20) as u8).collect();
        let mut buf = Vec::new();
        write_pgm_to(&pixels, 4, 3, &mut buf).expect("write");
        let header_end = buf.windows(4).position(|w| w == b"255\n").expect("header") + 4;
        assert_eq!(&buf[..3], b"P5\n");
        assert_eq!(&buf[header_end..], &pixels[..]);
    }

    #[test]
    fn pgm_rejects_wrong_size() {
        let mut buf = Vec::new();
        assert!(write_pgm_to(&[0u8; 5], 4, 3, &mut buf).is_err());
    }

    #[test]
    fn contact_sheet_places_rows_by_class() {
        // Two classes, 2×2 images: class 0 all 10s, class 1 all 200s.
        let samples = vec![vec![10u8; 4], vec![200u8; 4], vec![10u8; 4]];
        let labels = vec![0, 1, 0];
        let (sheet, w, h) = contact_sheet(&samples, &labels, 2, 2, 2, 2);
        assert_eq!((w, h), (4, 4));
        // Top-left block = first class-0 sample.
        assert_eq!(sheet[0], 10);
        // Bottom-left block (row 2) = class-1 sample.
        assert_eq!(sheet[2 * 4], 200);
    }

    #[test]
    fn contact_sheet_ignores_overflow_samples() {
        let samples = vec![vec![1u8; 1]; 5];
        let labels = vec![0usize; 5];
        let (sheet, w, h) = contact_sheet(&samples, &labels, 1, 1, 1, 2);
        assert_eq!((w, h), (2, 1));
        assert_eq!(sheet, vec![1, 1]);
    }
}
