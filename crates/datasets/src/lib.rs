//! Seeded synthetic stand-ins for the nine datasets the paper evaluates.
//!
//! The real datasets (MNIST, Fashion-MNIST, Fruits-360, AFHQ, CelebA,
//! Widar 3.0, Multi-PIE, RF-Sauron, USC-HAD) are not available in this
//! offline environment, so this crate generates class-structured synthetic
//! data with the same *shape*: class counts, sample counts, and an
//! intrinsic difficulty calibrated so a digital linear model lands near
//! the paper's simulation accuracy for each dataset (see DESIGN.md,
//! substitution table). Every effect the paper reports is *relative* —
//! simulation vs prototype, scheme on vs off, fusion gain — and those
//! relations derive from the architecture, not from the specific images.
//!
//! Generators:
//!
//! * [`images`] — smooth random-field class prototypes with per-sample
//!   deformation and pixel noise, standing in for the five image datasets;
//! * [`series`] — class-keyed multi-tone time series with time warping,
//!   standing in for Widar 3.0 gestures;
//! * [`multisensor`] — a shared latent class variable observed through
//!   per-view mixing transforms, standing in for Multi-PIE (3 camera
//!   views), RF-Sauron (3 antennas), and USC-HAD (accelerometer +
//!   gyroscope);
//! * [`encode`] — bytes → bits → modulated complex symbols, the exact
//!   path a commodity transmitter would take.
//!
//! All generation is deterministic in the dataset seed.

pub mod encode;
pub mod export;
pub mod images;
pub mod multisensor;
pub mod series;
pub mod spec;

pub use encode::{encode_bytes_dataset, to_real_dataset};
pub use spec::{DatasetId, DatasetSpec, Scale};

use metaai_nn::data::ComplexDataset;
use metaai_phy::Modulation;

/// Raw (pre-modulation) samples: one byte vector and label per sample.
#[derive(Clone, Debug)]
pub struct BytesDataset {
    /// Per-sample feature bytes.
    pub samples: Vec<Vec<u8>>,
    /// Class labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl BytesDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A train/test split of raw byte samples.
#[derive(Clone, Debug)]
pub struct BytesSplit {
    /// Training partition.
    pub train: BytesDataset,
    /// Test partition.
    pub test: BytesDataset,
}

impl BytesSplit {
    /// Modulates both partitions into complex symbol datasets.
    pub fn modulate(&self, modulation: Modulation) -> (ComplexDataset, ComplexDataset) {
        (
            encode_bytes_dataset(&self.train, modulation),
            encode_bytes_dataset(&self.test, modulation),
        )
    }
}

/// Generates the full train/test split for a dataset at a given scale.
pub fn generate(id: DatasetId, scale: Scale, seed: u64) -> BytesSplit {
    let spec = DatasetSpec::of(id, scale);
    match id {
        DatasetId::Mnist
        | DatasetId::Fashion
        | DatasetId::Fruits360
        | DatasetId::Afhq
        | DatasetId::CelebA => images::generate_image_split(&spec, seed),
        DatasetId::Widar3 => series::generate_series_split(&spec, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_all_single_sensor_datasets_quickly() {
        for id in DatasetId::all() {
            let split = generate(id, Scale::Quick, 1);
            let spec = DatasetSpec::of(id, Scale::Quick);
            assert_eq!(split.train.len(), spec.train_samples, "{id:?}");
            assert_eq!(split.test.len(), spec.test_samples, "{id:?}");
            assert_eq!(split.train.num_classes, spec.classes, "{id:?}");
            assert!(split
                .train
                .samples
                .iter()
                .all(|s| s.len() == spec.feature_bytes()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetId::Mnist, Scale::Quick, 7);
        let b = generate(DatasetId::Mnist, Scale::Quick, 7);
        assert_eq!(a.train.samples, b.train.samples);
        assert_eq!(a.test.labels, b.test.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(DatasetId::Mnist, Scale::Quick, 1);
        let b = generate(DatasetId::Mnist, Scale::Quick, 2);
        assert_ne!(a.train.samples, b.train.samples);
    }

    #[test]
    fn modulation_produces_symbol_vectors() {
        let split = generate(DatasetId::Afhq, Scale::Quick, 3);
        let (train, test) = split.modulate(Modulation::Qam256);
        // 256-QAM carries one byte per symbol.
        assert_eq!(train.input_len(), split.train.samples[0].len());
        assert_eq!(test.len(), split.test.len());
    }
}
