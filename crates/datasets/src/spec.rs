//! Dataset identities, shapes, and difficulty calibration.

/// The six single-sensor datasets of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Handwritten digits (MNIST stand-in): 10 classes, 28 × 28.
    Mnist,
    /// Fashion goods (Fashion-MNIST stand-in): 10 classes, 28 × 28.
    Fashion,
    /// Fruit images (Fruits-360 stand-in): 8 classes, 30 × 30.
    Fruits360,
    /// Animal faces (AFHQ stand-in): 3 classes, 30 × 30.
    Afhq,
    /// Human faces (CelebA subset stand-in): 10 identities, 24 × 24.
    CelebA,
    /// Wi-Fi gestures (Widar 3.0 stand-in): 6 classes, 24 × 32 features.
    Widar3,
}

impl DatasetId {
    /// All six datasets in the paper's Table 1 order.
    pub fn all() -> [DatasetId; 6] {
        [
            DatasetId::Mnist,
            DatasetId::Fashion,
            DatasetId::Fruits360,
            DatasetId::Afhq,
            DatasetId::CelebA,
            DatasetId::Widar3,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Mnist => "MNIST",
            DatasetId::Fashion => "Fashion",
            DatasetId::Fruits360 => "Fruits-360",
            DatasetId::Afhq => "AFHQ",
            DatasetId::CelebA => "CelebA",
            DatasetId::Widar3 => "Widar3.0",
        }
    }
}

/// How much data to generate: full paper sizes, a balanced default for
/// development, or a minimal smoke-test scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's sample counts (MNIST: 60 000 / 10 000, …).
    Paper,
    /// Capped at 3 000 train / 800 test — minutes, not hours.
    Default,
    /// Capped at 300 train / 120 test — for tests and CI.
    Quick,
}

impl Scale {
    fn cap(self, train: usize, test: usize) -> (usize, usize) {
        match self {
            Scale::Paper => (train, test),
            Scale::Default => (train.min(3000), test.min(800)),
            Scale::Quick => (train.min(300), test.min(120)),
        }
    }
}

/// Full generation parameters for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which dataset this parameterizes.
    pub id: DatasetId,
    /// Number of classes.
    pub classes: usize,
    /// Feature grid width.
    pub width: usize,
    /// Feature grid height.
    pub height: usize,
    /// Training samples (after scaling).
    pub train_samples: usize,
    /// Test samples (after scaling).
    pub test_samples: usize,
    /// Sub-prototypes per class: > 1 makes classes multimodal, which a
    /// linear model cannot carve perfectly but a deep model can — the
    /// source of the ResNet-vs-LNN gap in Table 1.
    pub modes: usize,
    /// Spread of sub-prototypes around the class mean, as a fraction of
    /// typical inter-class distance.
    pub mode_spread: f64,
    /// Prototype contrast: amplitude of the class pattern around the
    /// mid-grey level, 0–255 units. Lower contrast = harder.
    pub contrast: f64,
    /// Fraction of pixels carrying class information (the "stroke"
    /// foreground); the rest is shared background.
    pub foreground: f64,
    /// Per-pixel Gaussian noise, in 0–255 units.
    pub pixel_noise: f64,
    /// Amplitude of smooth per-sample deformation fields, 0–255 units.
    pub deform: f64,
}

impl DatasetSpec {
    /// The calibrated spec for a dataset at a given scale.
    ///
    /// Difficulty constants (modes / spread / noise / deform) are tuned so
    /// the *digital* complex LNN reaches approximately the simulation
    /// accuracy the paper reports for that dataset (Table 1), preserving
    /// the cross-dataset ordering.
    pub fn of(id: DatasetId, scale: Scale) -> DatasetSpec {
        // (classes, w, h, train, test, modes, spread, contrast, fg, noise, deform)
        let (classes, w, h, train, test, modes, spread, contrast, fg, noise, deform) = match id {
            DatasetId::Mnist => (10, 28, 28, 60_000, 10_000, 2, 0.55, 38.0, 0.30, 30.0, 30.0),
            DatasetId::Fashion => (10, 28, 28, 60_000, 10_000, 3, 0.85, 34.0, 0.40, 32.0, 34.0),
            DatasetId::Fruits360 => (8, 30, 30, 25_772, 6_528, 2, 0.75, 27.0, 0.40, 36.0, 40.0),
            DatasetId::Afhq => (3, 30, 30, 14_630, 1_500, 4, 1.40, 21.0, 0.45, 40.0, 46.0),
            DatasetId::CelebA => (10, 24, 24, 220, 80, 2, 0.55, 58.0, 0.30, 24.0, 17.0),
            DatasetId::Widar3 => (6, 32, 24, 2_700, 300, 5, 1.00, 13.0, 0.40, 44.0, 80.0),
        };
        let (train_samples, test_samples) = scale.cap(train, test);
        DatasetSpec {
            id,
            classes,
            width: w,
            height: h,
            train_samples,
            test_samples,
            modes,
            mode_spread: spread,
            contrast,
            foreground: fg,
            pixel_noise: noise,
            deform,
        }
    }

    /// Bytes per sample (one byte per feature).
    pub fn feature_bytes(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table_1() {
        let m = DatasetSpec::of(DatasetId::Mnist, Scale::Paper);
        assert_eq!(m.train_samples, 60_000);
        assert_eq!(m.test_samples, 10_000);
        assert_eq!(m.classes, 10);
        assert_eq!(m.feature_bytes(), 784);

        let a = DatasetSpec::of(DatasetId::Afhq, Scale::Paper);
        assert_eq!(
            (a.train_samples, a.test_samples, a.classes),
            (14_630, 1_500, 3)
        );

        let c = DatasetSpec::of(DatasetId::CelebA, Scale::Paper);
        assert_eq!((c.train_samples, c.test_samples, c.classes), (220, 80, 10));

        let w = DatasetSpec::of(DatasetId::Widar3, Scale::Paper);
        assert_eq!(
            (w.train_samples, w.test_samples, w.classes),
            (2_700, 300, 6)
        );
    }

    #[test]
    fn default_scale_caps_large_sets() {
        let m = DatasetSpec::of(DatasetId::Mnist, Scale::Default);
        assert_eq!(m.train_samples, 3_000);
        // Small sets are untouched.
        let c = DatasetSpec::of(DatasetId::CelebA, Scale::Default);
        assert_eq!(c.train_samples, 220);
    }

    #[test]
    fn quick_scale_is_small() {
        for id in DatasetId::all() {
            let s = DatasetSpec::of(id, Scale::Quick);
            assert!(s.train_samples <= 300);
            assert!(s.test_samples <= 120);
        }
    }

    #[test]
    fn every_dataset_has_multimodal_classes() {
        for id in DatasetId::all() {
            let s = DatasetSpec::of(id, Scale::Paper);
            assert!(s.modes >= 2, "{id:?} must be nonlinear enough");
        }
    }
}
