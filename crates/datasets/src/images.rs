//! Smooth random-field image generator.
//!
//! Class prototypes are sums of low-frequency 2-D cosines — smooth,
//! image-like patterns with broad spatial structure. Each class owns
//! `modes` sub-prototypes scattered around its mean (making the class
//! multimodal); a sample picks a mode, adds a smooth per-sample
//! deformation field and per-pixel noise, then quantizes to bytes.

use crate::spec::DatasetSpec;
use crate::{BytesDataset, BytesSplit};
use metaai_math::rng::SimRng;

/// A smooth random field over a `w × h` grid built from explicit spatial
/// frequencies (in cycles across the grid), with random phases and
/// amplitudes, normalized to roughly unit RMS.
pub fn smooth_field_with_freqs(
    w: usize,
    h: usize,
    freqs: &[(f64, f64)],
    rng: &mut SimRng,
) -> Vec<f64> {
    let mut field = vec![0.0; w * h];
    for &(cx, cy) in freqs {
        let fx = cx * std::f64::consts::TAU / w as f64;
        let fy = cy * std::f64::consts::TAU / h as f64;
        let phase = rng.phase();
        let amp = rng.uniform_range(0.5, 1.0);
        for y in 0..h {
            for x in 0..w {
                field[y * w + x] += amp * (fx * x as f64 + fy * y as f64 + phase).cos();
            }
        }
    }
    let rms = (field.iter().map(|v| v * v).sum::<f64>() / field.len() as f64).sqrt();
    if rms > 0.0 {
        for v in &mut field {
            *v /= rms;
        }
    }
    field
}

/// A smooth random field with `terms` broadband low frequencies (up to ~3
/// cycles across the grid).
pub fn smooth_field(w: usize, h: usize, terms: usize, rng: &mut SimRng) -> Vec<f64> {
    let freqs: Vec<(f64, f64)> = (0..terms)
        .map(|_| (rng.uniform_range(0.2, 3.0), rng.uniform_range(0.2, 3.0)))
        .collect();
    smooth_field_with_freqs(w, h, &freqs, rng)
}

/// Draws a class-specific frequency signature: `terms` spatial frequencies
/// sampled from a pool keyed to the class index.
///
/// Real object categories occupy distinct spatial-frequency bands (stroke
/// widths, texture scales); giving each synthetic class its own signature
/// reproduces that, and it is what makes the magnitude readout's
/// approximate shift-invariance (the property CDFA training exploits)
/// achievable at high accuracy.
pub fn class_frequency_signature(class: usize, terms: usize, rng: &mut SimRng) -> Vec<(f64, f64)> {
    // A pool of grid frequencies; each class anchors on a distinct subset.
    let pool: Vec<(f64, f64)> = (0..6)
        .flat_map(|i| (0..6).map(move |j| (0.4 + 0.5 * i as f64, 0.4 + 0.5 * j as f64)))
        .collect();
    let stride = 7; // co-prime with 36 → classes walk distinct subsets
    (0..terms)
        .map(|t| {
            let idx = (class * 5 + t * stride) % pool.len();
            let (cx, cy) = pool[idx];
            // Small jitter so signatures are not exactly on the grid.
            (
                cx + rng.uniform_range(-0.1, 0.1),
                cy + rng.uniform_range(-0.1, 0.1),
            )
        })
        .collect()
}

/// A binary foreground mask selecting the top `frac` of a smooth field —
/// the "stroke" pixels that carry class information, like the pen strokes
/// of a digit against a shared background.
pub fn foreground_mask(w: usize, h: usize, frac: f64, rng: &mut SimRng) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&frac), "fraction in [0,1]");
    let field = smooth_field(w, h, 4, rng);
    let mut sorted = field.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite field"));
    let cut_idx = ((1.0 - frac) * (sorted.len() - 1) as f64).round() as usize;
    let threshold = sorted[cut_idx];
    field
        .into_iter()
        .map(|v| if v >= threshold { 1.0 } else { 0.0 })
        .collect()
}

/// Per-class sub-prototypes in pixel units (mean 128).
///
/// Class information lives only in a per-mode *foreground* region (like
/// digit strokes); the rest of the image is a background shared by every
/// class. Concentrating the evidence this way is what separates
/// continuous-weight training from discrete-from-the-start training
/// (Table 1): fixed-magnitude discrete weights cannot attenuate the
/// uninformative background pixels, so they pay a noise floor that
/// continuous weights avoid.
fn class_prototypes(spec: &DatasetSpec, rng: &mut SimRng) -> Vec<Vec<Vec<f64>>> {
    let n = spec.feature_bytes();
    let background = smooth_field(spec.width, spec.height, 5, rng);
    (0..spec.classes)
        .map(|class| {
            let signature = class_frequency_signature(class, 6, rng);
            let base = smooth_field_with_freqs(spec.width, spec.height, &signature, rng);
            (0..spec.modes)
                .map(|_| {
                    let offset = smooth_field(spec.width, spec.height, 4, rng);
                    let mask = foreground_mask(spec.width, spec.height, spec.foreground, rng);
                    (0..n)
                        .map(|i| {
                            let class_pattern = base[i] + spec.mode_spread * offset[i];
                            // Nearly flat shared background: like the
                            // empty canvas behind a digit's strokes. A
                            // flat background keeps cyclically shifted
                            // samples correlated, which is what lets the
                            // magnitude readout tolerate residual sync
                            // error after CDFA training.
                            128.0 + spec.contrast * (0.15 * background[i] + mask[i] * class_pattern)
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn render_sample(spec: &DatasetSpec, prototype: &[f64], rng: &mut SimRng) -> Vec<u8> {
    let deform = smooth_field(spec.width, spec.height, 3, rng);
    prototype
        .iter()
        .zip(&deform)
        .map(|(&p, &d)| {
            let v = p + spec.deform * d + rng.normal(0.0, spec.pixel_noise);
            v.round().clamp(0.0, 255.0) as u8
        })
        .collect()
}

fn generate_partition(
    spec: &DatasetSpec,
    prototypes: &[Vec<Vec<f64>>],
    count: usize,
    rng: &mut SimRng,
) -> BytesDataset {
    let mut samples = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        // Round-robin classes for balance, random mode per sample.
        let class = i % spec.classes;
        let mode = rng.below(spec.modes);
        samples.push(render_sample(spec, &prototypes[class][mode], rng));
        labels.push(class);
    }
    BytesDataset {
        samples,
        labels,
        num_classes: spec.classes,
    }
}

/// Generates a full train/test split for an image dataset.
///
/// Prototypes derive from `seed` alone; train and test samples come from
/// independent derived streams, so the two partitions share the class
/// structure but no noise.
pub fn generate_image_split(spec: &DatasetSpec, seed: u64) -> BytesSplit {
    let mut prng = SimRng::derive(seed, &format!("{}-prototypes", spec.id.name()));
    let prototypes = class_prototypes(spec, &mut prng);
    let mut train_rng = SimRng::derive(seed, &format!("{}-train", spec.id.name()));
    let mut test_rng = SimRng::derive(seed, &format!("{}-test", spec.id.name()));
    BytesSplit {
        train: generate_partition(spec, &prototypes, spec.train_samples, &mut train_rng),
        test: generate_partition(spec, &prototypes, spec.test_samples, &mut test_rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DatasetId, Scale};

    fn quick_spec() -> DatasetSpec {
        DatasetSpec::of(DatasetId::Mnist, Scale::Quick)
    }

    #[test]
    fn smooth_field_is_normalized() {
        let mut rng = SimRng::seed_from_u64(1);
        let f = smooth_field(16, 16, 5, &mut rng);
        let rms = (f.iter().map(|v| v * v).sum::<f64>() / f.len() as f64).sqrt();
        assert!((rms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_field_is_actually_smooth() {
        // Adjacent-pixel differences must be small relative to the range.
        let mut rng = SimRng::seed_from_u64(2);
        let w = 24;
        let f = smooth_field(w, 24, 5, &mut rng);
        let mut max_step: f64 = 0.0;
        for y in 0..24 {
            for x in 1..w {
                max_step = max_step.max((f[y * w + x] - f[y * w + x - 1]).abs());
            }
        }
        let range = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - f.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max_step < 0.35 * range, "step {max_step} range {range}");
    }

    #[test]
    fn split_has_balanced_classes() {
        let spec = quick_spec();
        let split = generate_image_split(&spec, 5);
        let mut counts = vec![0usize; spec.classes];
        for &l in &split.train.labels {
            counts[l] += 1;
        }
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max - min <= 1, "unbalanced: {counts:?}");
    }

    #[test]
    fn samples_use_full_byte_range_reasonably() {
        let spec = quick_spec();
        let split = generate_image_split(&spec, 6);
        let all: Vec<u8> = split.train.samples.iter().flatten().copied().collect();
        let lo = *all.iter().min().expect("non-empty");
        let hi = *all.iter().max().expect("non-empty");
        assert!(hi > 180, "max {hi}");
        assert!(lo < 70, "min {lo}");
    }

    #[test]
    fn same_class_samples_correlate_more_than_cross_class() {
        let spec = quick_spec();
        let split = generate_image_split(&spec, 7);
        // Average intra-class vs inter-class L2 distance on a few samples.
        let d = |a: &[u8], b: &[u8]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let v = x as f64 - y as f64;
                    v * v
                })
                .sum::<f64>()
                .sqrt()
        };
        let by_class = |c: usize| -> Vec<&Vec<u8>> {
            split
                .train
                .samples
                .iter()
                .zip(&split.train.labels)
                .filter(|(_, &l)| l == c)
                .map(|(s, _)| s)
                .take(6)
                .collect()
        };
        let c0 = by_class(0);
        let c1 = by_class(1);
        let intra = d(c0[0], c0[1]).min(d(c0[2], c0[3]));
        let inter = d(c0[0], c1[0]).max(d(c0[1], c1[1]));
        // Not a strict guarantee per pair (multimodality), but the min
        // intra distance should not exceed the max inter distance by much.
        assert!(intra < inter * 1.5, "intra {intra} inter {inter}");
    }

    #[test]
    fn train_and_test_share_prototypes_but_not_samples() {
        let spec = quick_spec();
        let split = generate_image_split(&spec, 8);
        assert_ne!(split.train.samples[0], split.test.samples[0]);
    }
}
