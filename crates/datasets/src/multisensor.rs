//! Multi-sensor datasets — stand-ins for Multi-PIE, RF-Sauron, USC-HAD.
//!
//! Fig 20 of the paper fuses multiple sensors observing the *same event*:
//! three camera views of one face, three RFID antennas around one gesture,
//! or an accelerometer and gyroscope on one body. We model this with a
//! shared latent event vector observed through per-sensor fixed mixing
//! transforms plus independent per-sensor noise: fusing sensors averages
//! away the independent noise, so accuracy rises with sensor count —
//! exactly the mechanism behind the paper's +25 % / +27 % gains.

use crate::spec::Scale;
use crate::{BytesDataset, BytesSplit};
use metaai_math::rng::SimRng;

/// The three multi-sensor datasets of Fig 20.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultiSensorId {
    /// Multi-PIE stand-in: faces from 3 camera views (c07, c09, c29).
    MultiPie,
    /// RF-Sauron stand-in: RFID gestures from 3 receiving antennas.
    RfSauron,
    /// USC-HAD stand-in: activities from accelerometer + gyroscope.
    UscHad,
}

impl MultiSensorId {
    /// All three datasets, paper order.
    pub fn all() -> [MultiSensorId; 3] {
        [
            MultiSensorId::MultiPie,
            MultiSensorId::RfSauron,
            MultiSensorId::UscHad,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MultiSensorId::MultiPie => "Multi-PIE",
            MultiSensorId::RfSauron => "RF-Sauron",
            MultiSensorId::UscHad => "USC-HAD",
        }
    }
}

/// Generation parameters for a multi-sensor dataset.
#[derive(Clone, Debug)]
pub struct MultiSensorSpec {
    /// Dataset identity.
    pub id: MultiSensorId,
    /// Number of classes.
    pub classes: usize,
    /// Number of sensors (views / antennas / modalities).
    pub sensors: usize,
    /// Feature bytes per sensor sample.
    pub feature_bytes: usize,
    /// Training events (each event yields one sample per sensor).
    pub train_events: usize,
    /// Test events.
    pub test_events: usize,
    /// Latent event dimensionality.
    pub latent_dim: usize,
    /// Sub-prototypes per class.
    pub modes: usize,
    /// Event-level (shared) noise, in latent units.
    pub event_noise: f64,
    /// Per-sensor independent noise, in byte units — the quantity fusion
    /// averages away.
    pub sensor_noise: f64,
}

impl MultiSensorSpec {
    /// The calibrated spec for a dataset at a given scale; sample counts
    /// follow the paper's per-sensor selections.
    pub fn of(id: MultiSensorId, scale: Scale) -> MultiSensorSpec {
        let (classes, sensors, feat, train, test, latent, modes, ev, sn) = match id {
            // 192 train / 48 test per view, 10 identities.
            MultiSensorId::MultiPie => (10, 3, 24 * 24, 192, 48, 24, 2, 0.30, 34.0),
            // 2800 train / 1280 test per antenna, 10 gestures.
            MultiSensorId::RfSauron => (10, 3, 16 * 24, 2_800, 1_280, 20, 2, 0.50, 52.0),
            // 336 train / 85 test per modality, 6 activities.
            MultiSensorId::UscHad => (6, 2, 16 * 24, 336, 85, 16, 2, 0.60, 62.0),
        };
        let (train_events, test_events) = match scale {
            Scale::Paper => (train, test),
            Scale::Default => (train.min(1_200), test.min(400)),
            Scale::Quick => (train.min(240), test.min(100)),
        };
        MultiSensorSpec {
            id,
            classes,
            sensors,
            feature_bytes: feat,
            train_events,
            test_events,
            latent_dim: latent,
            modes,
            event_noise: ev,
            sensor_noise: sn,
        }
    }
}

/// One partition of a multi-sensor dataset: `views[s]` holds sensor `s`'s
/// samples; labels are identical across sensors (one label per event).
#[derive(Clone, Debug)]
pub struct MultiSensorData {
    /// Per-sensor datasets, index-aligned by event.
    pub views: Vec<BytesDataset>,
}

impl MultiSensorData {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.views.first().map_or(0, |v| v.len())
    }

    /// True when there are no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Event labels (shared across sensors).
    pub fn labels(&self) -> &[usize] {
        &self.views[0].labels
    }
}

/// Train/test split of a multi-sensor dataset.
#[derive(Clone, Debug)]
pub struct MultiSensorSplit {
    /// Training events.
    pub train: MultiSensorData,
    /// Test events.
    pub test: MultiSensorData,
}

impl MultiSensorSplit {
    /// Extracts sensor `s`'s train/test pair as a single-sensor split.
    pub fn sensor(&self, s: usize) -> BytesSplit {
        BytesSplit {
            train: self.train.views[s].clone(),
            test: self.test.views[s].clone(),
        }
    }
}

/// Per-sensor mixing transform: a fixed random `feature × latent` matrix.
fn mixing_matrix(rows: usize, cols: usize, rng: &mut SimRng) -> Vec<f64> {
    (0..rows * cols)
        .map(|_| rng.normal(0.0, 1.0 / (cols as f64).sqrt()))
        .collect()
}

fn generate_partition(
    spec: &MultiSensorSpec,
    prototypes: &[Vec<Vec<f64>>],
    mixers: &[Vec<f64>],
    events: usize,
    rng: &mut SimRng,
) -> MultiSensorData {
    let mut views: Vec<BytesDataset> = (0..spec.sensors)
        .map(|_| BytesDataset {
            samples: Vec::with_capacity(events),
            labels: Vec::with_capacity(events),
            num_classes: spec.classes,
        })
        .collect();

    for e in 0..events {
        let class = e % spec.classes;
        let mode = rng.below(spec.modes);
        // Shared latent event: prototype + event noise.
        let latent: Vec<f64> = prototypes[class][mode]
            .iter()
            .map(|&z| z + rng.normal(0.0, spec.event_noise))
            .collect();
        for (s, view) in views.iter_mut().enumerate() {
            let mix = &mixers[s];
            let bytes: Vec<u8> = (0..spec.feature_bytes)
                .map(|r| {
                    let mut v = 0.0;
                    for (c, &l) in latent.iter().enumerate() {
                        v += mix[r * spec.latent_dim + c] * l;
                    }
                    let pixel = 128.0 + 45.0 * v + rng.normal(0.0, spec.sensor_noise);
                    pixel.round().clamp(0.0, 255.0) as u8
                })
                .collect();
            view.samples.push(bytes);
            view.labels.push(class);
        }
    }
    MultiSensorData { views }
}

/// Generates a multi-sensor train/test split.
pub fn generate_multisensor(id: MultiSensorId, scale: Scale, seed: u64) -> MultiSensorSplit {
    let spec = MultiSensorSpec::of(id, scale);
    let mut prng = SimRng::derive(seed, &format!("{}-latents", spec.id.name()));
    // Class prototypes in latent space, unit-ish scale.
    let prototypes: Vec<Vec<Vec<f64>>> = (0..spec.classes)
        .map(|_| {
            (0..spec.modes)
                .map(|_| {
                    (0..spec.latent_dim)
                        .map(|_| prng.normal(0.0, 1.0))
                        .collect()
                })
                .collect()
        })
        .collect();
    let mixers: Vec<Vec<f64>> = (0..spec.sensors)
        .map(|_| mixing_matrix(spec.feature_bytes, spec.latent_dim, &mut prng))
        .collect();

    let mut train_rng = SimRng::derive(seed, &format!("{}-train", spec.id.name()));
    let mut test_rng = SimRng::derive(seed, &format!("{}-test", spec.id.name()));
    MultiSensorSplit {
        train: generate_partition(
            &spec,
            &prototypes,
            &mixers,
            spec.train_events,
            &mut train_rng,
        ),
        test: generate_partition(&spec, &prototypes, &mixers, spec.test_events, &mut test_rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_counts() {
        let mp = MultiSensorSpec::of(MultiSensorId::MultiPie, Scale::Paper);
        assert_eq!(
            (mp.classes, mp.sensors, mp.train_events, mp.test_events),
            (10, 3, 192, 48)
        );
        let rf = MultiSensorSpec::of(MultiSensorId::RfSauron, Scale::Paper);
        assert_eq!(
            (rf.classes, rf.sensors, rf.train_events, rf.test_events),
            (10, 3, 2_800, 1_280)
        );
        let us = MultiSensorSpec::of(MultiSensorId::UscHad, Scale::Paper);
        assert_eq!(
            (us.classes, us.sensors, us.train_events, us.test_events),
            (6, 2, 336, 85)
        );
    }

    #[test]
    fn labels_align_across_sensors() {
        let split = generate_multisensor(MultiSensorId::MultiPie, Scale::Quick, 1);
        for v in 1..split.train.views.len() {
            assert_eq!(split.train.views[0].labels, split.train.views[v].labels);
        }
    }

    #[test]
    fn sensors_observe_the_same_event_differently() {
        let split = generate_multisensor(MultiSensorId::UscHad, Scale::Quick, 2);
        // Same event, different sensors → different bytes.
        assert_ne!(
            split.train.views[0].samples[0],
            split.train.views[1].samples[0]
        );
    }

    #[test]
    fn per_sensor_extraction_works() {
        let split = generate_multisensor(MultiSensorId::RfSauron, Scale::Quick, 3);
        let s1 = split.sensor(1);
        assert_eq!(s1.train.len(), split.train.len());
        assert_eq!(s1.train.samples[0], split.train.views[1].samples[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_multisensor(MultiSensorId::MultiPie, Scale::Quick, 4);
        let b = generate_multisensor(MultiSensorId::MultiPie, Scale::Quick, 4);
        assert_eq!(a.train.views[2].samples, b.train.views[2].samples);
    }

    #[test]
    fn quick_scale_is_capped() {
        let split = generate_multisensor(MultiSensorId::RfSauron, Scale::Quick, 5);
        assert!(split.train.len() <= 240);
        assert!(split.test.len() <= 100);
    }
}
