//! Byte → bit → symbol encoding, and real-feature extraction.

use crate::BytesDataset;
use metaai_math::CVec;
use metaai_nn::data::{ComplexDataset, RealDataset};
use metaai_phy::bits::bytes_to_bits;
use metaai_phy::Modulation;

/// Modulates one byte vector into a complex symbol vector, exactly as a
/// commodity transmitter would: bytes → bits (MSB-first) → Gray-mapped
/// constellation symbols.
pub fn encode_sample(bytes: &[u8], modulation: Modulation) -> CVec {
    CVec::from_vec(modulation.modulate(&bytes_to_bits(bytes)))
}

/// Modulates a whole dataset. The symbol-vector length is
/// `⌈8·bytes / bits_per_symbol⌉`.
pub fn encode_bytes_dataset(data: &BytesDataset, modulation: Modulation) -> ComplexDataset {
    let inputs: Vec<CVec> = data
        .samples
        .iter()
        .map(|s| encode_sample(s, modulation))
        .collect();
    ComplexDataset::new(inputs, data.labels.clone(), data.num_classes)
}

/// Converts bytes to centred real features in `[−0.5, 0.5]` for the
/// digital deep baseline (which consumes raw features, not modulated
/// symbols). Centring keeps the MLP's optimization well-conditioned.
pub fn to_real_dataset(data: &BytesDataset) -> RealDataset {
    let inputs: Vec<Vec<f64>> = data
        .samples
        .iter()
        .map(|s| s.iter().map(|&b| b as f64 / 255.0 - 0.5).collect())
        .collect();
    RealDataset::new(inputs, data.labels.clone(), data.num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bytes() -> BytesDataset {
        BytesDataset {
            samples: vec![vec![0u8, 127, 255], vec![16, 32, 64]],
            labels: vec![0, 1],
            num_classes: 2,
        }
    }

    #[test]
    fn qam256_is_one_symbol_per_byte() {
        let ds = encode_bytes_dataset(&toy_bytes(), Modulation::Qam256);
        assert_eq!(ds.input_len(), 3);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn bpsk_is_eight_symbols_per_byte() {
        let ds = encode_bytes_dataset(&toy_bytes(), Modulation::Bpsk);
        assert_eq!(ds.input_len(), 24);
    }

    #[test]
    fn encoding_round_trips_through_demodulation() {
        let bytes = vec![0xDEu8, 0xAD, 0xBE, 0xEF];
        for m in Modulation::all() {
            let sy = encode_sample(&bytes, m);
            let bits = m.demodulate(sy.as_slice());
            let back = metaai_phy::bits::bits_to_bytes(&bits[..32]);
            assert_eq!(back, bytes, "{}", m.name());
        }
    }

    #[test]
    fn real_dataset_is_centred() {
        let ds = to_real_dataset(&toy_bytes());
        assert_eq!(ds.inputs[0][0], -0.5);
        assert_eq!(ds.inputs[0][2], 0.5);
        assert!((ds.inputs[0][1] - (127.0 / 255.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn labels_are_preserved() {
        let ds = encode_bytes_dataset(&toy_bytes(), Modulation::Qpsk);
        assert_eq!(ds.labels, vec![0, 1]);
    }
}
