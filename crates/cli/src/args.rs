//! Minimal flag parsing for the `metaai` CLI — no external dependency.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare flags map to `"true"`. Keeps only the
    /// *last* value per key — see [`Args::all`] for repeatable flags.
    pub options: HashMap<String, String>,
    /// Every `--key value` occurrence in command-line order, so flags
    /// like `serve --model a=x.bin --model b=y.bin` keep all values.
    pub repeated: Vec<(String, String)>,
}

impl Args {
    /// Parses an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                out.repeated.push((key.to_string(), value.clone()));
                out.options.insert(key.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A parsed numeric option with a default; exits with a message on a
    /// malformed value.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.options.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: --{key} expects a number, got {v:?}");
                std::process::exit(2);
            }),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Every value passed for `--key`, in command-line order (empty if
    /// the flag never appeared).
    pub fn all(&self, key: &str) -> Vec<&str> {
        self.repeated
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("train --dataset mnist --epochs 25 --quiet");
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get_or("dataset", "x"), "mnist");
        assert_eq!(a.num_or::<usize>("epochs", 1), 25);
        assert!(a.flag("quiet"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn positionals_after_command() {
        let a = parse("infer model.bin sample.bin");
        assert_eq!(a.command.as_deref(), Some("infer"));
        assert_eq!(a.positional, vec!["model.bin", "sample.bin"]);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("eval");
        assert_eq!(a.get_or("scale", "default"), "default");
        assert_eq!(a.num_or::<u64>("seed", 42), 42);
    }

    #[test]
    fn flag_followed_by_flag_is_bare() {
        let a = parse("train --quiet --dataset mnist");
        assert!(a.flag("quiet"));
        assert_eq!(a.get_or("dataset", "?"), "mnist");
    }

    #[test]
    fn repeated_flags_keep_every_value_in_order() {
        let a = parse("serve --model afhq=a.bin --port 7000 --model mnist=b.bin");
        assert_eq!(a.all("model"), vec!["afhq=a.bin", "mnist=b.bin"]);
        assert_eq!(a.all("port"), vec!["7000"]);
        assert!(a.all("nope").is_empty());
        // `options` keeps the last occurrence, as before.
        assert_eq!(a.get_or("model", "?"), "mnist=b.bin");
    }
}
