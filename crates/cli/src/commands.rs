//! The `metaai` subcommands.

use crate::args::Args;
use metaai::config::SystemConfig;
use metaai::pipeline::MetaAiSystem;
use metaai_datasets::{generate, DatasetId, Scale};
use metaai_math::rng::SimRng;
use metaai_mts::control::ControlModel;
use metaai_nn::augment::Augmentation;
use metaai_nn::complex_lnn::ComplexLnn;
use metaai_nn::data::ComplexDataset;
use metaai_nn::io::{load_model, save_model};
use metaai_nn::metrics::ConfusionMatrix;
use metaai_nn::train::{train_complex_with_stats, TrainConfig};

fn parse_dataset(name: &str) -> Result<DatasetId, String> {
    match name.to_ascii_lowercase().as_str() {
        "mnist" => Ok(DatasetId::Mnist),
        "fashion" => Ok(DatasetId::Fashion),
        "fruits" | "fruits360" | "fruits-360" => Ok(DatasetId::Fruits360),
        "afhq" => Ok(DatasetId::Afhq),
        "celeba" => Ok(DatasetId::CelebA),
        "widar" | "widar3" | "widar3.0" => Ok(DatasetId::Widar3),
        other => Err(format!(
            "unknown dataset {other:?} (expected mnist|fashion|fruits|afhq|celeba|widar)"
        )),
    }
}

fn parse_scale(name: &str) -> Result<Scale, String> {
    match name.to_ascii_lowercase().as_str() {
        "quick" => Ok(Scale::Quick),
        "default" => Ok(Scale::Default),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Enables telemetry for the run when `--metrics-out <path>` is present
/// (registering the full instrument set so the snapshot is complete even
/// for stages this command never reaches).
fn metrics_begin(args: &Args) {
    if args.options.contains_key("metrics-out") {
        metaai::telemetry::install().set_enabled(true);
    }
}

/// Writes the registry snapshot to the `--metrics-out` path, as JSON by
/// default or Prometheus text with `--metrics-format prom`. Returns an
/// exit code override on failure.
fn metrics_finish(args: &Args) -> Option<i32> {
    let path = args.options.get("metrics-out")?;
    let registry = metaai_telemetry::global();
    let rendered = match args.get_or("metrics-format", "json") {
        "json" => registry.render_json(),
        "prom" | "prometheus" => registry.render_prometheus(),
        other => {
            return Some(fail(&format!(
                "unknown --metrics-format {other:?} (expected json|prom)"
            )))
        }
    };
    match std::fs::write(path, rendered) {
        Ok(()) => {
            println!("telemetry snapshot written to {path}");
            None
        }
        Err(e) => Some(fail(&format!("cannot write {path}: {e}"))),
    }
}

struct Setup {
    config: SystemConfig,
    train: ComplexDataset,
    test: ComplexDataset,
}

fn setup(args: &Args) -> Result<Setup, String> {
    let id = parse_dataset(args.get_or("dataset", "mnist"))?;
    let scale = parse_scale(args.get_or("scale", "default"))?;
    let seed: u64 = args.num_or("seed", 42);
    let config = SystemConfig {
        seed,
        ..SystemConfig::paper_default()
    };
    let (train, test) = generate(id, scale, seed).modulate(config.modulation);
    Ok(Setup {
        config,
        train,
        test,
    })
}

fn robust_train_config(args: &Args) -> TrainConfig {
    TrainConfig {
        epochs: args.num_or("epochs", 25),
        seed: args.num_or("seed", 42),
        ..TrainConfig::default()
    }
    .with_augmentation(Augmentation::cdfa_default())
    .with_augmentation(Augmentation::noise_default())
}

fn load(args: &Args) -> Result<ComplexLnn, String> {
    let path = args.options.get("model").ok_or("missing --model <file>")?;
    load_model(path).map_err(|e| format!("cannot load {path}: {e}"))
}

/// `metaai train`
pub fn train(args: &Args) -> i32 {
    metrics_begin(args);
    let s = match setup(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let tcfg = robust_train_config(args);
    let layers: usize = args.num_or("layers", 1);
    if layers == 0 {
        return fail("--layers expects at least 1");
    }
    println!(
        "training on {} samples ({} classes, U = {} symbols), {} epochs…",
        s.train.len(),
        s.train.num_classes,
        s.train.input_len(),
        tcfg.epochs
    );
    let t0 = std::time::Instant::now();
    let (net, stats) = if layers > 1 {
        // Product-parameterized stack factors W_0 ⊙ … ⊙ W_{L-1}; the
        // saved model is their effective (composed) network, which any
        // stacked deployment can re-factorize.
        println!("stacked mode: {layers} cascaded surfaces (product parameterization)");
        let (weights, stats) = metaai_sim::train_stack_with_stats(&s.train, layers, &tcfg);
        (weights.effective_net(), stats)
    } else {
        train_complex_with_stats(&s.train, &tcfg)
    };
    let last = stats.last().expect("at least one epoch");
    println!(
        "done in {:.1?}: train loss {:.4}, train accuracy {:.2} %",
        t0.elapsed(),
        last.loss,
        100.0 * last.accuracy
    );
    println!(
        "test (digital) accuracy: {:.2} %",
        100.0 * metaai_nn::train::evaluate(&net, &s.test)
    );
    let out = args.get_or("out", "model.bin");
    match save_model(&net, out) {
        Ok(()) => {
            println!("model written to {out}");
            metrics_finish(args).unwrap_or(0)
        }
        Err(e) => fail(&format!("cannot write {out}: {e}")),
    }
}

/// `metaai eval`
pub fn eval(args: &Args) -> i32 {
    metrics_begin(args);
    let s = match setup(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let net = match load(args) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    if net.input_len() != s.test.input_len() || net.num_classes() != s.test.num_classes {
        return fail(&format!(
            "model shape {}×{} does not match dataset {}×{}",
            net.num_classes(),
            net.input_len(),
            s.test.num_classes,
            s.test.input_len()
        ));
    }
    let digital = metaai_nn::train::evaluate(&net, &s.test);
    println!("digital (simulation) accuracy: {:.2} %", 100.0 * digital);

    let system = MetaAiSystem::builder().config(s.config.clone()).deploy(net);
    println!(
        "deployed on {} atoms; realization error {:.3} %",
        system.array.num_atoms(),
        100.0 * system.realization_error()
    );
    let ota = system.ota_accuracy(&s.test, "cli-eval");
    println!("over-the-air (prototype) accuracy: {:.2} %", 100.0 * ota);

    if args.flag("confusion") {
        let n = s.test.input_len();
        let mut cm = ConfusionMatrix::new(s.test.num_classes);
        let stream = SimRng::stream_id("cli-confusion");
        let predictions =
            system
                .engine()
                .batch_predict_with(&s.test.inputs, s.config.seed, stream, |rng| {
                    system.default_conditions(n, rng)
                });
        for (i, &pred) in predictions.iter().enumerate() {
            cm.record(s.test.labels[i], pred);
        }
        println!("\nconfusion matrix (over the air):\n{}", cm.render());
        println!("macro F1: {:.3}", cm.macro_f1());
        if let Some((t, p, c)) = cm.worst_confusion() {
            println!("worst confusion: true {t} → predicted {p} ({c} times)");
        }
    }
    metrics_finish(args).unwrap_or(0)
}

/// `metaai deploy`
pub fn deploy(args: &Args) -> i32 {
    let s = match setup(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let net = match load(args) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let t0 = std::time::Instant::now();
    let system = MetaAiSystem::builder().config(s.config.clone()).deploy(net);
    let solve_time = t0.elapsed();

    let control = ControlModel::default();
    let u = system.schedule.num_symbols();
    let r = system.schedule.num_outputs();
    println!("schedule solved in {solve_time:.1?}");
    println!("  outputs × symbols: {r} × {u} ({} configurations)", r * u);
    println!(
        "  weight scale σ = {:.3e}, RMS residual {:.3} (normalized)",
        system.schedule.scale, system.schedule.rms_residual
    );
    println!(
        "  relative realization error: {:.3} %",
        100.0 * system.realization_error()
    );
    println!(
        "  per-inference airtime: {:.3} ms, MTS control energy {:.3} mJ",
        1e3 * (r * u) as f64 / s.config.symbol_rate,
        1e3 * control.inference_energy_j(r * u, 2)
    );
    let bits = control.pattern_bits(&system.schedule.codes[0][0]);
    println!(
        "  controller: {} groups × {} bits per pattern, {:.0} ns load at 100 MHz",
        bits.len(),
        bits[0].len(),
        1e9 * control.load_time_s(system.array.num_atoms(), 100e6)
    );
    0
}

/// `metaai infer`
pub fn infer(args: &Args) -> i32 {
    metrics_begin(args);
    let s = match setup(args) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let net = match load(args) {
        Ok(n) => n,
        Err(e) => return fail(&e),
    };
    let idx: usize = args.num_or("sample", 0);
    if idx >= s.test.len() {
        return fail(&format!(
            "--sample {idx} out of range (test set has {} samples)",
            s.test.len()
        ));
    }
    let system = MetaAiSystem::builder().config(s.config.clone()).deploy(net);
    let x = &s.test.inputs[idx];
    let mut rng = SimRng::derive_indexed(s.config.seed, SimRng::stream_id("cli-infer"), idx as u64);
    let cond = system.default_conditions(x.len(), &mut rng);
    let outcome = system.run(
        &metaai::engine::InferenceRequest::new(x, cond).with_trace(),
        &mut rng,
    );
    let trace = outcome.trace.expect("trace requested");

    println!("sample {idx} (true class {}):", s.test.labels[idx]);
    for (class, score) in trace.scores.iter().enumerate() {
        let mark = if class == trace.predicted {
            "  ← predicted"
        } else {
            ""
        };
        println!("  class {class}: {score:.4e}{mark}");
    }
    let verdict = if trace.predicted == s.test.labels[idx] {
        "correct"
    } else {
        "WRONG"
    };
    println!("decision: class {} ({verdict})", trace.predicted);

    if let Some(path) = args.options.get("trace") {
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => return fail(&format!("cannot create {path}: {e}")),
        };
        if let Err(e) = metaai::trace::write_csv(&trace, std::io::BufWriter::new(file)) {
            return fail(&format!("cannot write trace: {e}"));
        }
        println!(
            "per-symbol trace written to {path} ({} rows)",
            trace.rows.len()
        );
    }
    metrics_finish(args).unwrap_or(0)
}

/// `metaai serve` — long-running OTA inference service over TCP. Each
/// `--model` flag registers one tenant: `--model name=file` serves
/// `file` under `name`, a bare `--model file` serves it as the default
/// model (where v1 clients land). The flag repeats to serve several
/// models on one port, each with its own queue and worker pool.
///
/// `--adapt <mps>` attaches one online-adaptation controller per model:
/// the receiver walks the paper's arc at `<mps>` m/s and each
/// controller probes, warm re-solves, and hot-swaps its deployment as
/// the channel drifts (epochs tick up; clients only ever see the echo
/// change). `--adapt-probes <dataset>` enables the accuracy probe on
/// that dataset's held-out set; without it the policy is residual-only.
/// `--adapt-interval-ms`, `--adapt-threshold`, `--adapt-residual`,
/// `--adapt-hysteresis`, and `--adapt-cooldown` tune the loop.
pub fn serve(args: &Args) -> i32 {
    metrics_begin(args);
    metaai_serve::register_metrics();
    metaai_adapt::register_metrics();
    let specs = args.all("model");
    if specs.is_empty() {
        return fail("missing --model <file> (or --model <name>=<file>, repeatable)");
    }
    let mut models: Vec<(String, ComplexLnn)> = Vec::new();
    for spec in specs {
        let (name, path) = match spec.split_once('=') {
            Some((name, path)) if !name.is_empty() => (name.to_string(), path),
            _ => (metaai_serve::DEFAULT_MODEL.to_string(), spec),
        };
        if models.iter().any(|(n, _)| *n == name) {
            return fail(&format!("--model {name:?} given twice"));
        }
        let net = match load_model(path) {
            Ok(n) => n,
            Err(e) => return fail(&format!("cannot load {path}: {e}")),
        };
        models.push((name, net));
    }
    let seed: u64 = args.num_or("seed", 42);
    let config = SystemConfig {
        seed,
        ..SystemConfig::paper_default()
    };
    let policy = match args.get_or("policy", "shed") {
        "shed" => metaai_serve::OverflowPolicy::Shed,
        "block" => metaai_serve::OverflowPolicy::Block,
        other => return fail(&format!("unknown --policy {other:?} (expected shed|block)")),
    };
    let defaults = metaai_serve::ServeConfig::default();
    let serve_cfg = metaai_serve::ServeConfig {
        max_batch: args.num_or("max-batch", defaults.max_batch),
        max_delay: std::time::Duration::from_micros(args.num_or("max-delay-us", 2000u64)),
        queue_capacity: args.num_or("queue-cap", defaults.queue_capacity),
        workers: args.num_or("workers", defaults.workers),
        policy,
    };
    let port: u16 = args.num_or("port", 7077);
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => return fail(&format!("cannot bind 127.0.0.1:{port}: {e}")),
    };
    let addr = listener.local_addr().expect("bound listener");

    let mut builder = metaai_serve::Server::builder();
    let model_count = models.len();
    for (name, net) in models {
        let t0 = std::time::Instant::now();
        let system =
            std::sync::Arc::new(MetaAiSystem::builder().config(config.clone()).deploy(net));
        println!(
            "deployed {name}: {} classes × {} symbols on {} atoms in {:.1?} \
             (realization error {:.3} %)",
            system.engine().num_outputs(),
            system.engine().num_symbols(),
            system.array.num_atoms(),
            t0.elapsed(),
            100.0 * system.realization_error()
        );
        builder = builder.model(name, system);
    }
    println!(
        "serving {model_count} model(s) on {addr} — {} workers/model, batch ≤ {}, \
         flush ≤ {:?}, queue {} ({} overflow); \
         send a SHUTDOWN frame (loadgen --shutdown) to drain and stop",
        serve_cfg.workers,
        serve_cfg.max_batch,
        serve_cfg.max_delay,
        serve_cfg.queue_capacity,
        args.get_or("policy", "shed"),
    );
    let server = builder.config(serve_cfg).start();

    let mut adapt_handles = Vec::new();
    if let Some(mps) = args.options.get("adapt") {
        let mps: f64 = match mps
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
        {
            Some(v) => v,
            None => {
                return fail(&format!(
                    "--adapt expects a positive speed in m/s, got {mps:?}"
                ))
            }
        };
        let probe_dataset = match args.options.get("adapt-probes") {
            None => None,
            Some(name) => match parse_dataset(name) {
                Ok(id) => Some(id),
                Err(e) => return fail(&e),
            },
        };
        let defaults = metaai_adapt::TriggerPolicy::default();
        let policy = metaai_adapt::TriggerPolicy {
            // Without labelled probes the accuracy signal is meaningless;
            // staleness is then judged on the channel residual alone.
            probe_accuracy_floor: if probe_dataset.is_some() {
                args.num_or("adapt-threshold", defaults.probe_accuracy_floor)
            } else {
                0.0
            },
            residual_ceiling: args.num_or("adapt-residual", defaults.residual_ceiling),
            hysteresis: args.num_or("adapt-hysteresis", defaults.hysteresis),
            cooldown_rounds: args.num_or("adapt-cooldown", defaults.cooldown_rounds),
        };
        let interval = std::time::Duration::from_millis(args.num_or("adapt-interval-ms", 500u64));
        for entry in server.registry().entries() {
            let system = entry.current().system.clone();
            let symbols = system.channels.cols();
            let probes = match probe_dataset {
                Some(id) => {
                    let (_, test) = generate(id, Scale::Quick, seed).modulate(config.modulation);
                    if test.input_len() != symbols {
                        return fail(&format!(
                            "--adapt-probes {}: {} symbols per sample, but model {:?} \
                             serves {symbols}",
                            args.get_or("adapt-probes", "?"),
                            test.input_len(),
                            entry.name(),
                        ));
                    }
                    metaai_adapt::ProbeSet::from_dataset(&test, 32, seed)
                }
                None => {
                    // Unlabelled random probes: enough to realize the
                    // live channel and read the residual.
                    let mut rng = SimRng::derive(seed, "serve-adapt-probes");
                    let inputs: Vec<metaai_math::CVec> = (0..8)
                        .map(|_| {
                            metaai_math::CVec::from_vec(
                                (0..symbols).map(|_| rng.complex_gaussian(1.0)).collect(),
                            )
                        })
                        .collect();
                    metaai_adapt::ProbeSet {
                        labels: vec![0; inputs.len()],
                        inputs,
                        seed,
                    }
                }
            };
            let view = metaai_adapt::MobilityDrift {
                base: system.config.clone(),
                schedule: metaai::mobility::DriftSchedule::paper_walk(mps),
            };
            let ctl =
                metaai_adapt::AdaptController::new(entry.clone(), Box::new(view), probes, policy);
            adapt_handles.push((entry.name().to_string(), ctl.spawn(interval)));
        }
        println!(
            "adaptation on: receiver walking at {mps} m/s, probing every {interval:?} \
             (residual ceiling {}, accuracy floor {})",
            policy.residual_ceiling, policy.probe_accuracy_floor,
        );
    }

    let outcome = metaai_serve::tcp::serve(listener, server);
    for (name, handle) in adapt_handles {
        match handle.stop() {
            Ok((ctl, reports)) => {
                let swaps = reports.iter().filter(|r| r.swap.is_some()).count();
                println!(
                    "adaptation for {name}: {} rounds, {swaps} re-solve(s) swapped in",
                    ctl.rounds()
                );
            }
            // A dead adaptation loop must not turn a clean drain into a
            // crash; the death is already on metaai.adapt.controller_panics.
            Err(panic) => eprintln!("adaptation for {name}: {panic}"),
        }
    }
    match outcome {
        Ok(()) => {
            println!("drained and stopped");
            metrics_finish(args).unwrap_or(0)
        }
        Err(e) => fail(&format!("serve loop failed: {e}")),
    }
}

/// `metaai scan`
pub fn scan(args: &Args) -> i32 {
    let angle: f64 = args.num_or("angle", 25.0);
    let config = SystemConfig::paper_default().with_rx_at(3.0, angle);
    let mut array =
        metaai_mts::array::MtsArray::paper_prototype(config.prototype, config.mts_center);
    let link = metaai_mts::channel::MtsLink::new(&array, config.tx, config.rx, config.freq_hz);
    let est = metaai_mts::beamscan::estimate_receiver_angle(
        &mut array,
        &link,
        metaai_rf::geometry::deg_to_rad(-60.0),
        metaai_rf::geometry::deg_to_rad(60.0),
        121,
    );
    println!(
        "receiver placed at {angle:.1}° — beam scan estimates {:.1}°",
        metaai_rf::geometry::rad_to_deg(est)
    );
    0
}

/// `metaai export`
pub fn export(args: &Args) -> i32 {
    let id = match parse_dataset(args.get_or("dataset", "mnist")) {
        Ok(id) => id,
        Err(e) => return fail(&e),
    };
    let scale = match parse_scale(args.get_or("scale", "quick")) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let seed: u64 = args.num_or("seed", 42);
    let per_class: usize = args.num_or("per-class", 8);
    let out = args.get_or("out", "contact_sheet.pgm");

    let split = metaai_datasets::generate(id, scale, seed);
    let spec = metaai_datasets::DatasetSpec::of(id, scale);
    let (sheet, w, h) = metaai_datasets::export::contact_sheet(
        &split.train.samples,
        &split.train.labels,
        spec.classes,
        spec.width,
        spec.height,
        per_class,
    );
    match metaai_datasets::export::write_pgm(&sheet, w, h, out) {
        Ok(()) => {
            println!(
                "{}: {} classes × {per_class} samples → {out} ({w}×{h} PGM)",
                id.name(),
                spec.classes
            );
            0
        }
        Err(e) => fail(&format!("cannot write {out}: {e}")),
    }
}

/// `metaai wdd`
pub fn wdd(args: &Args) -> i32 {
    let atoms: Vec<usize> = args
        .get_or("atoms", "16,32,64,128,256,512")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    if atoms.is_empty() {
        return fail("--atoms expects a comma-separated list of counts");
    }
    let cfg = metaai_mts::wdd::WddConfig::default();
    let seed: u64 = args.num_or("seed", 42);
    println!(
        "WDD (ε = {}, {} samples per point):",
        cfg.epsilon, cfg.samples
    );
    for (m, w) in metaai_mts::wdd::wdd_sweep(&atoms, &cfg, seed) {
        println!("  M = {m:<5} WDD = {w:.3}");
    }
    0
}

/// `metaai bench` — run declarative scenario recipes (see
/// `metaai_bench::scenario` and DESIGN.md §14).
///
/// ```text
/// metaai bench list
/// metaai bench run --recipes recipes/quick [--out-dir scenario-results]
///                  [--pr 10]
/// metaai bench run --recipe recipes/quick/serve-clean.recipe
/// ```
///
/// `run` writes one `<recipe>-<scenario>.json` per result plus a
/// `merged.json` in the `BENCH_pr{N}.json` layout `bench_gate` parses,
/// and exits non-zero if any scenario errors (the error still lands in
/// the merged report, so the artifact shows what failed).
///
/// `--merge-into BENCH_pr10.json` additionally splices the fresh
/// `scenarios` subtree into an existing perf report — that is how the
/// committed baseline carrying both perf and scenario keys is
/// regenerated.
pub fn bench(args: &Args) -> i32 {
    use metaai_bench::scenario;

    match args.positional.first().map(String::as_str) {
        Some("list") => {
            println!("scenario registry:");
            for s in scenario::SCENARIOS {
                println!("  {s}");
            }
            0
        }
        Some("run") => {
            let mut recipes = Vec::new();
            for path in args.all("recipe") {
                match scenario::load_recipe_file(std::path::Path::new(path)) {
                    Ok(r) => recipes.push(r),
                    Err(e) => return fail(&e),
                }
            }
            if let Some(dir) = args.options.get("recipes") {
                match scenario::load_recipe_dir(std::path::Path::new(dir)) {
                    Ok(rs) => recipes.extend(rs),
                    Err(e) => return fail(&e),
                }
            }
            if recipes.is_empty() {
                return fail("bench run needs --recipes DIR or --recipe FILE");
            }
            let out_dir = args.get_or("out-dir", "scenario-results");
            if let Err(e) = std::fs::create_dir_all(out_dir) {
                return fail(&format!("cannot create {out_dir}: {e}"));
            }
            let pr: u32 = args.num_or("pr", 9);

            let mut runs = Vec::new();
            let mut errors = 0usize;
            for recipe in recipes {
                println!(
                    "recipe {} (seed {}): {}",
                    recipe.name,
                    recipe.seed,
                    recipe.scenarios.join(", ")
                );
                let results = scenario::run_recipe(&recipe);
                for (name, result) in &results {
                    match result {
                        Ok(outcome) => {
                            let path = format!("{out_dir}/{}-{name}.json", recipe.name);
                            let doc = scenario::result_json(&recipe, name, outcome);
                            if let Err(e) = std::fs::write(&path, doc.render()) {
                                return fail(&format!("cannot write {path}: {e}"));
                            }
                            println!("  {name:<18} ok → {path}");
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("  {name:<18} ERROR: {e}");
                        }
                    }
                }
                runs.push(scenario::RecipeRun { recipe, results });
            }

            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let merged = scenario::merged_json(pr, cores, &runs);
            let merged_path = format!("{out_dir}/merged.json");
            if let Err(e) = std::fs::write(&merged_path, merged.render()) {
                return fail(&format!("cannot write {merged_path}: {e}"));
            }
            let total: usize = runs.iter().map(|r| r.results.len()).sum();
            println!(
                "{} scenario run(s), {errors} error(s) → {merged_path}",
                total
            );

            if let Some(path) = args.options.get("merge-into") {
                use metaai_bench::gate::Json;
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("cannot read {path}: {e}")),
                };
                let report = match metaai_bench::gate::parse(&text) {
                    Ok(j) => j,
                    Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
                };
                let (Json::Obj(mut pairs), Json::Obj(fresh)) = (report, merged) else {
                    return fail(&format!("{path} is not a JSON object"));
                };
                let scenarios = fresh
                    .into_iter()
                    .find(|(k, _)| k == "scenarios")
                    .expect("merged report always has a scenarios key");
                pairs.retain(|(k, _)| k != "scenarios");
                pairs.push(scenarios);
                if let Err(e) = std::fs::write(path, Json::Obj(pairs).render()) {
                    return fail(&format!("cannot write {path}: {e}"));
                }
                println!("scenarios subtree merged into {path}");
            }

            if errors > 0 {
                1
            } else {
                0
            }
        }
        Some(other) => fail(&format!(
            "unknown bench action {other:?} (expected run|list)"
        )),
        None => fail("bench needs an action: run or list"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_parse() {
        assert_eq!(parse_dataset("MNIST").expect("ok"), DatasetId::Mnist);
        assert_eq!(
            parse_dataset("fruits-360").expect("ok"),
            DatasetId::Fruits360
        );
        assert!(parse_dataset("imagenet").is_err());
    }

    #[test]
    fn scales_parse() {
        assert_eq!(parse_scale("quick").expect("ok"), Scale::Quick);
        assert!(parse_scale("enormous").is_err());
    }

    #[test]
    fn end_to_end_train_then_eval_through_files() {
        let dir = std::env::temp_dir().join("metaai-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let model = dir.join("model.bin");
        let model_s = model.to_str().expect("utf8").to_string();

        let train_args = crate::args::Args::parse(
            format!("train --dataset afhq --scale quick --epochs 8 --out {model_s}")
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(train(&train_args), 0);
        assert!(model.exists());

        let eval_args = crate::args::Args::parse(
            format!("eval --dataset afhq --scale quick --model {model_s}")
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(eval(&eval_args), 0);
        let _ = std::fs::remove_file(&model);
    }

    #[test]
    fn eval_rejects_shape_mismatch() {
        let dir = std::env::temp_dir().join("metaai-cli-test2");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let model = dir.join("model.bin");
        let model_s = model.to_str().expect("utf8").to_string();
        // Train on AFHQ (3 classes), evaluate against MNIST (10 classes).
        let train_args = crate::args::Args::parse(
            format!("train --dataset afhq --scale quick --epochs 2 --out {model_s}")
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(train(&train_args), 0);
        let eval_args = crate::args::Args::parse(
            format!("eval --dataset mnist --scale quick --model {model_s}")
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(eval(&eval_args), 2);
        let _ = std::fs::remove_file(&model);
    }

    #[test]
    fn eval_metrics_out_writes_snapshot_with_all_stages() {
        let dir = std::env::temp_dir().join("metaai-cli-test3");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let model = dir.join("model.bin");
        let model_s = model.to_str().expect("utf8").to_string();
        let metrics = dir.join("metrics.json");
        let metrics_s = metrics.to_str().expect("utf8").to_string();

        let train_args = crate::args::Args::parse(
            format!("train --dataset afhq --scale quick --epochs 2 --out {model_s}")
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(train(&train_args), 0);

        let eval_args = crate::args::Args::parse(
            format!(
                "eval --dataset afhq --scale quick --model {model_s} --metrics-out {metrics_s}"
            )
            .split_whitespace()
            .map(String::from),
        );
        assert_eq!(eval(&eval_args), 0);

        let snap = std::fs::read_to_string(&metrics).expect("snapshot written");
        // Engine, train, and solver instruments must all be present — the
        // solver's Eqn-4 residual histogram in particular.
        for name in [
            "metaai.core.engine.samples",
            "metaai.core.engine.chips",
            "metaai.nn.train.epochs",
            "metaai.mts.solver.solves",
            "metaai.mts.solver.residual",
        ] {
            assert!(snap.contains(name), "snapshot missing {name}:\n{snap}");
        }
        let _ = std::fs::remove_file(&model);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn metrics_finish_rejects_unknown_format() {
        let args = crate::args::Args::parse(
            "eval --metrics-out /tmp/x.json --metrics-format yaml"
                .split_whitespace()
                .map(String::from),
        );
        assert_eq!(metrics_finish(&args), Some(2));
    }

    #[test]
    fn scan_command_runs() {
        let args = crate::args::Args::parse("scan --angle 20".split_whitespace().map(String::from));
        assert_eq!(scan(&args), 0);
    }
}
