//! `metaai` — train, deploy, and run over-the-air classifiers.
//!
//! ```text
//! metaai train  --dataset mnist --scale default --epochs 25 --out model.bin
//! metaai eval   --model model.bin --dataset mnist [--confusion]
//! metaai deploy --model model.bin
//! metaai infer  --model model.bin --dataset mnist --sample 0 [--trace t.csv]
//! metaai serve  --model model.bin --port 7077 [--workers 2 --max-batch 64]
//! metaai scan   [--angle 25]
//! metaai export --dataset mnist --scale quick --out sheet.pgm
//! metaai wdd    [--atoms 16,64,256]
//! metaai bench  run --recipes recipes/quick --out-dir scenario-results
//! ```
//!
//! Every command is deterministic in `--seed` (default 42).

mod args;
mod commands;

use args::Args;

fn main() {
    let args = Args::from_env();
    let code = match args.command.as_deref() {
        Some("train") => commands::train(&args),
        Some("eval") => commands::eval(&args),
        Some("deploy") => commands::deploy(&args),
        Some("infer") => commands::infer(&args),
        Some("serve") => commands::serve(&args),
        Some("scan") => commands::scan(&args),
        Some("export") => commands::export(&args),
        Some("wdd") => commands::wdd(&args),
        Some("bench") => commands::bench(&args),
        Some("help") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    println!(
        "metaai — over-the-air neural networks via programmable metasurfaces

USAGE:
  metaai <COMMAND> [OPTIONS]

COMMANDS:
  train    Train a complex linear classifier on a synthetic dataset
           (--layers L ≥ 2 trains product-parameterized factors for an
           L-layer stacked metasurface cascade)
  eval     Evaluate a saved model digitally and over the air
  deploy   Solve the metasurface schedule for a saved model and report
           realization quality and control-budget numbers
  infer    Run one traced over-the-air inference
  serve    Serve over-the-air inference on a TCP port (micro-batched;
           --port 7077 --workers N --max-batch 64 --max-delay-us 2000
           --queue-cap 1024 --policy shed|block; drain with loadgen
           --shutdown; --adapt MPS attaches the online-adaptation loop,
           tuned by --adapt-probes DATASET --adapt-interval-ms N
           --adapt-threshold F --adapt-residual F --adapt-hysteresis N
           --adapt-cooldown N)
  scan     Beam-scan demo: estimate the receiver angle
  export   Dump a dataset contact sheet as a PGM image
  wdd      Weight-distribution-density sweep (Appendix A.2)
  bench    Run declarative benchmark scenarios from recipe files
           (bench run --recipes DIR | --recipe FILE [--out-dir DIR]
           [--pr N]; bench list shows the scenario registry)
  help     Show this message

COMMON OPTIONS:
  --dataset <mnist|fashion|fruits|afhq|celeba|widar>   (default mnist)
  --scale   <quick|default|paper>                      (default default)
  --seed    <N>                                        (default 42)
  --metrics-out    <path>        write a telemetry snapshot after the run
                                 (train/eval/infer)
  --metrics-format <json|prom>   snapshot format       (default json)

See README.md for the full workflow."
    );
}
