//! Minimal vendored stand-in for the `rayon` crate (offline build).
//!
//! Implements an order-preserving parallel iterator over a materialized
//! `Vec`, executed with `std::thread::scope` over contiguous chunks. The
//! worker count is `min(available_parallelism, RAYON_NUM_THREADS)` and is
//! re-read on every parallel operation, so tests can pin the thread count
//! via the environment variable exactly as with real rayon.
//!
//! Semantics guaranteed (and relied on by the workspace):
//! - `map`/`filter`/`zip`/`collect` preserve input order, as rayon's
//!   indexed parallel iterators do;
//! - closures run at most once per item;
//! - with `RAYON_NUM_THREADS=1` everything runs inline on the caller's
//!   thread.

use std::ops::Range;

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Worker count for the next parallel operation.
fn threads() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(0) | None => hw,
        Some(n) => n.min(hw.max(n)).min(64),
    }
}

/// Order-preserving chunked parallel map.
fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = threads().min(n).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut source = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    while !source.is_empty() {
        let tail = source.split_off(source.len().min(chunk));
        chunks.push(std::mem::replace(&mut source, tail));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// A materialized, order-preserving parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let kept = par_map(self.items, |item| if f(&item) { Some(item) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    /// Pair elements with another parallel source, truncating to the
    /// shorter of the two (rayon's `zip` semantics on equal-length inputs).
    pub fn zip<O: IntoParallelIterator>(self, other: O) -> ParIter<(T, O::Item)> {
        let items = self
            .items
            .into_iter()
            .zip(other.into_par_iter().items)
            .collect();
        ParIter { items }
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter()` on slices and `Vec`s (via deref).
pub trait IntoParallelRefIterator<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let doubled: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled.len(), 1000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn filter_and_count() {
        let n = (0..1000usize)
            .into_par_iter()
            .filter(|&i| i % 3 == 0)
            .count();
        assert_eq!(n, 334);
    }

    #[test]
    fn zip_pairs_in_order() {
        let xs = vec![10, 20, 30];
        let labels = vec![1usize, 2, 3];
        let pairs: Vec<(i32, &usize)> = xs.into_par_iter().zip(&labels).collect();
        assert_eq!(pairs, vec![(10, &1), (20, &2), (30, &3)]);
    }

    #[test]
    fn par_iter_on_vec_slices() {
        let v = [1.0f64, 2.0, 3.0];
        let s: f64 = v.par_iter().map(|x| x * x).sum();
        assert!((s - 14.0).abs() < 1e-12);
    }

    #[test]
    fn single_thread_env_matches_default() {
        let seq: Vec<usize> = {
            std::env::set_var("RAYON_NUM_THREADS", "1");
            let out = (0..64usize).into_par_iter().map(|i| i + 1).collect();
            std::env::remove_var("RAYON_NUM_THREADS");
            out
        };
        let par: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(seq, par);
    }
}
