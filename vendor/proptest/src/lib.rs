//! Minimal vendored stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` macro over `#[test] fn name(arg in strategy, ...)`
//! items, range/tuple/`any`/`collection::vec` strategies, and the
//! `prop_assert*` macros. Each property runs `test_runner::CASES`
//! deterministic cases seeded from the test's name — no shrinking, no
//! persistence files. Failures report the ordinary `assert!` panic.

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Number of cases per property. Smaller than upstream's 256 to keep
    /// the suite fast on constrained machines while still sweeping each
    /// strategy broadly.
    pub const CASES: usize = 64;

    /// Deterministic per-test RNG (seeded from the test name) so CI runs
    /// are reproducible.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Types with a canonical "whole domain" strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for `vec`.
    pub trait SizeBounds {
        fn bounds(self) -> (usize, usize);
    }

    impl SizeBounds for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeBounds for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __proptest_case in 0..$crate::test_runner::CASES {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)*
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro loops, binds strategy values, and enforces bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(any::<u8>(), 2..5),
            w in crate::collection::vec(0u64..9, 4..=4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| x < 9));
        }

        #[test]
        fn tuples_generate_componentwise(p in (0u8..4, 10usize..12)) {
            prop_assert!(p.0 < 4);
            prop_assert!(p.1 == 10 || p.1 == 11);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
