//! Minimal vendored stand-in for the `rand` crate.
//!
//! This workspace builds in an offline container with no crates.io access,
//! so the handful of `rand` APIs the repo actually uses are reimplemented
//! here behind the same names. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the upstream `StdRng` (ChaCha12), which is fine because
//! nothing in the workspace asserts golden random values, only statistical
//! properties and run-to-run determinism.
//!
//! Surface provided (everything the workspace imports):
//! - `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngCore::next_u64`
//! - `RngExt::{random, random_range}` for `f64` and the integer ranges
//!   used by `metaai-math::rng`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s. Mirrors `rand_core::RngCore` at the
/// one method this workspace consumes.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling helpers (`rand`'s `Rng`/`RngExt`).
pub trait RngExt: RngCore + Sized {
    /// Sample a value from its standard distribution (`f64` → uniform [0, 1)).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    pub use super::StdRng;
}

/// xoshiro256++ by Blackman & Vigna (public domain reference construction),
/// seeded via SplitMix64 as the authors recommend.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Standard-distribution sampling for `random::<T>()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (the upstream convention).
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range sampling for `random_range(range)`.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Uniform integer in [0, span) by widening multiply (Lemire's method,
/// without the rejection refinement — bias is < 2^-32 for the small spans
/// used here).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v: isize = rng.random_range(-3isize..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: f64 = rng.random_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&v));
        }
    }
}
