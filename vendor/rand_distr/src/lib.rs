//! Minimal vendored stand-in for the `rand_distr` crate (offline build).
//!
//! Provides the `Distribution` trait plus `Normal` and `Gamma`, the only
//! distributions this workspace samples. `Normal` is a stateless Box–Muller
//! (no cached second variate) so that a given rng state always yields the
//! same value for the same call sequence — important for the simulator's
//! reproducibility contracts. `Gamma` is Marsaglia–Tsang squeeze sampling
//! with the standard shape<1 boost.

use rand::RngCore;
use std::fmt;

/// Sampling interface, mirroring `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform in the open interval (0, 1) — never 0 so `ln` stays finite.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Normal distribution N(mean, std²).
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(Error("normal parameters must be finite"));
        }
        if std_dev < 0.0 {
            return Err(Error("normal std_dev must be non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }

    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Box–Muller, consuming exactly two u64 draws per variate.
        let r = (-2.0 * open01(rng).ln()).sqrt();
        let theta = std::f64::consts::TAU * open01(rng);
        r * theta.cos()
    }
}

impl Distribution<f64> for Normal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Gamma distribution with shape k and scale θ.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if shape <= 0.0 || !shape.is_finite() {
            return Err(Error("gamma shape must be positive and finite"));
        }
        if scale <= 0.0 || !scale.is_finite() {
            return Err(Error("gamma scale must be positive and finite"));
        }
        Ok(Gamma { shape, scale })
    }

    /// Marsaglia–Tsang (2000) for shape ≥ 1.
    fn standard_at_least_one<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        debug_assert!(shape >= 1.0);
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = open01(rng);
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let std = if self.shape >= 1.0 {
            Self::standard_at_least_one(self.shape, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k+1) · U^(1/k) for k < 1.
            let g = Self::standard_at_least_one(self.shape + 1.0, rng);
            g * open01(rng).powf(1.0 / self.shape)
        };
        std * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = Normal::new(2.0, 3.0).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn normal_is_stateless_per_call() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(5);
        let first = n.sample(&mut a);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(first.to_bits(), n.sample(&mut b).to_bits());
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut rng = StdRng::seed_from_u64(13);
        for (shape, scale) in [(0.5, 2.0), (2.0, 1.5), (7.5, 0.25)] {
            let g = Gamma::new(shape, scale).unwrap();
            let samples: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
            assert!(samples.iter().all(|&s| s >= 0.0));
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let expect = shape * scale;
            assert!(
                (mean - expect).abs() < 0.1 * expect.max(1.0),
                "shape {shape} scale {scale}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
    }
}
