//! Minimal vendored stand-in for the `criterion` crate (offline build).
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`bench_function` shape so
//! the workspace's bench files compile and run unchanged, but replaces the
//! statistical machinery with a single warmup pass plus a timed loop of
//! `sample_size` iterations, reporting mean ns/iter (and iters/sec) per
//! bench to stdout. Good enough for relative comparisons in one process;
//! not a replacement for real criterion's outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per bench (upstream: samples per estimate).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        let per_sec = if ns_per_iter > 0.0 {
            1e9 / ns_per_iter
        } else {
            f64::INFINITY
        };
        println!("{id:<55} {ns_per_iter:>14.1} ns/iter {per_sec:>12.1} iter/s");
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warmup pass.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = group;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    #[test]
    fn group_runs() {
        group();
    }
}
